//! Quotient graphs via partition refinement (paper §2.1).
//!
//! The quotient graph `Q_G` of an anonymous port-labeled graph `G` has one
//! node per class of view-equivalent nodes of `G`; class `X` has an edge
//! through port `p` to class `Y` with far port `q` iff the members of `X`
//! reach members of `Y` through `(p, q)` (this is well-defined at the
//! refinement fixpoint). `Q_G` contains everything a single deterministic
//! robot can learn about `G` (Czyzowicz–Kosowski–Pelc \[16\],
//! Yamashita–Kameda \[47\]).
//!
//! The partition refinement below is the standard 1-dimensional
//! color-refinement specialised to port-labeled graphs: start from the
//! degree partition and refine by the per-port `(far class, far port)`
//! signature until stable. At the fixpoint the classes are exactly the view
//! equivalence classes.

use crate::portgraph::{NodeId, Port, PortGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The quotient graph of a port-labeled graph, plus the projection maps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotientGraph {
    /// The class-level graph. May contain self-loops and parallel edges even
    /// when the underlying graph is simple.
    pub graph: PortGraph,
    /// `class_of[v]` = quotient node that `v` projects to.
    pub class_of: Vec<usize>,
    /// Members of each class, sorted ascending.
    pub members: Vec<Vec<NodeId>>,
}

impl QuotientGraph {
    /// Number of view classes.
    pub fn num_classes(&self) -> usize {
        self.graph.n()
    }

    /// Whether the quotient graph is isomorphic to the original graph — the
    /// precondition of Theorem 1. Because classes partition the `n` nodes,
    /// this holds iff every class is a singleton.
    pub fn is_isomorphic_to_original(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }

    /// Classes with exactly one member (nodes uniquely identifiable by view).
    pub fn singleton_classes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_classes()).filter(|&c| self.members[c].len() == 1)
    }

    /// A representative member of class `c` (the smallest node id).
    pub fn representative(&self, c: usize) -> NodeId {
        self.members[c][0]
    }
}

/// Compute the quotient graph of `g` by partition refinement.
///
/// Runs in `O(n * m)` time worst case (at most `n` refinement sweeps, each
/// `O(m)`), well inside the polynomial budget of the paper's Lemma 1.
pub fn quotient_graph(g: &PortGraph) -> QuotientGraph {
    let n = g.n();
    assert!(n > 0, "quotient of the empty graph is undefined");

    // Initial partition: by degree.
    let mut class_of: Vec<usize> = vec![0; n];
    {
        let mut ids: HashMap<usize, usize> = HashMap::new();
        for v in 0..n {
            let next = ids.len();
            let c = *ids.entry(g.degree(v)).or_insert(next);
            class_of[v] = c;
        }
    }

    // Refine until the number of classes stabilizes. Signature of v:
    // (own class, [(far class, far port) per port in order]).
    loop {
        let mut ids: HashMap<(usize, Vec<(usize, Port)>), usize> = HashMap::new();
        let mut next_of = vec![0usize; n];
        for v in 0..n {
            let sig: Vec<(usize, Port)> = (0..g.degree(v))
                .map(|p| {
                    let (u, q) = g.neighbor(v, p);
                    (class_of[u], q)
                })
                .collect();
            let key = (class_of[v], sig);
            let fresh = ids.len();
            next_of[v] = *ids.entry(key).or_insert(fresh);
        }
        let stable = ids.len() == class_count(&class_of);
        class_of = next_of;
        if stable {
            break;
        }
    }

    // Renumber classes by smallest member for determinism.
    let k = class_count(&class_of);
    let mut first_member = vec![usize::MAX; k];
    for v in 0..n {
        first_member[class_of[v]] = first_member[class_of[v]].min(v);
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| first_member[c]);
    let mut renum = vec![0usize; k];
    for (newc, &oldc) in order.iter().enumerate() {
        renum[oldc] = newc;
    }
    for c in class_of.iter_mut() {
        *c = renum[*c];
    }

    let mut members = vec![Vec::new(); k];
    for v in 0..n {
        members[class_of[v]].push(v);
    }

    // Build the class-level graph from representatives. Well-defined at the
    // fixpoint: all members of a class agree on (far class, far port) per
    // port.
    let adj: Vec<Vec<(usize, Port)>> = (0..k)
        .map(|c| {
            let rep = members[c][0];
            (0..g.degree(rep))
                .map(|p| {
                    let (u, q) = g.neighbor(rep, p);
                    (class_of[u], q)
                })
                .collect()
        })
        .collect();
    let graph = PortGraph::from_adjacency(adj)
        .expect("quotient adjacency is symmetric at the refinement fixpoint");

    QuotientGraph {
        graph,
        class_of,
        members,
    }
}

fn class_count(class_of: &[usize]) -> usize {
    class_of.iter().copied().max().map_or(0, |c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        erdos_renyi_connected, hypercube, oriented_ring, path, petersen, ring, star,
    };
    use crate::view::view_hashes_at_depth;

    #[test]
    fn oriented_ring_collapses_to_one_class() {
        let g = oriented_ring(8).unwrap();
        let q = quotient_graph(&g);
        assert_eq!(q.num_classes(), 1);
        assert!(!q.is_isomorphic_to_original());
        // Class graph: one node with ports 0 and 1 joined as a loop.
        assert_eq!(q.graph.degree(0), 2);
    }

    #[test]
    fn insertion_order_ring_is_asymmetric_enough() {
        // ring() gives node 0 a different port pattern than the rest, which
        // propagates and separates all views.
        let g = ring(7).unwrap();
        let q = quotient_graph(&g);
        assert!(q.is_isomorphic_to_original(), "classes: {:?}", q.members);
    }

    #[test]
    fn insertion_order_path_does_not_fold() {
        // Insertion-order ports break the mirror symmetry of a path.
        let g = path(5).unwrap();
        let q = quotient_graph(&g);
        assert!(q.is_isomorphic_to_original());
    }

    #[test]
    fn mirror_symmetric_path_folds_halves() {
        // 4-path with mirror-symmetric port labels: classes {0,3}, {1,2}.
        let g = crate::PortGraph::from_adjacency(vec![
            vec![(1, 1)],
            vec![(2, 0), (0, 0)],
            vec![(1, 0), (3, 0)],
            vec![(2, 1)],
        ])
        .unwrap();
        let q = quotient_graph(&g);
        assert_eq!(q.num_classes(), 2);
        assert_eq!(q.members[q.class_of[0]], vec![0, 3]);
        assert_eq!(q.members[q.class_of[1]], vec![1, 2]);
        assert!(!q.is_isomorphic_to_original());
    }

    #[test]
    fn hypercube_dimension_ports_collapse() {
        // With dimension-labeled ports the hypercube is vertex-transitive.
        let g = hypercube(3).unwrap();
        let q = quotient_graph(&g);
        assert_eq!(q.num_classes(), 1);
    }

    #[test]
    fn petersen_collapses() {
        let g = petersen().unwrap();
        let q = quotient_graph(&g);
        assert!(
            q.num_classes() < 10,
            "vertex-transitive presentation should fold"
        );
    }

    #[test]
    fn star_insertion_ports_fully_separate() {
        let g = star(6).unwrap();
        let q = quotient_graph(&g);
        // Each leaf has a distinct back-port at the center, so all views differ.
        assert!(q.is_isomorphic_to_original());
    }

    #[test]
    fn refinement_matches_norris_depth_view_hashes() {
        for seed in 0..6 {
            let g = erdos_renyi_connected(12, 0.3, seed).unwrap();
            let q = quotient_graph(&g);
            let h = view_hashes_at_depth(&g, g.n() - 1);
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(
                        q.class_of[a] == q.class_of[b],
                        h[a] == h[b],
                        "seed {seed}, nodes {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn quotient_graph_projection_commutes() {
        // Following port p from v and projecting equals following port p
        // from class_of[v] in the quotient graph.
        let g = path(6).unwrap();
        let q = quotient_graph(&g);
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (u, fq) = g.neighbor(v, p);
                let (cu, cq) = q.graph.neighbor(q.class_of[v], p);
                assert_eq!(cu, q.class_of[u]);
                assert_eq!(cq, fq);
            }
        }
    }
}
