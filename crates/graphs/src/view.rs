//! Truncated views of nodes in an anonymous port-labeled graph.
//!
//! The *view* of a node `v` (Yamashita–Kameda \[47\]) is the infinite rooted
//! tree of all walks leaving `v`, labeled by port numbers and degrees. Two
//! nodes with equal views are indistinguishable to any deterministic robot.
//! Norris' theorem: views are equal iff their truncations to depth `n - 1`
//! are equal, so finite comparison suffices.
//!
//! This module offers both an explicit [`ViewTree`] (exponential in depth —
//! test-scale only) and an iterated hash refinement
//! ([`view_hashes_at_depth`]) that runs in `O(depth * m)` and is what the
//! production code uses.

use crate::portgraph::{NodeId, Port, PortGraph};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// An explicitly materialized view tree of bounded depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewTree {
    /// Degree of the node at this position in the tree.
    pub degree: usize,
    /// One child per port `0..degree` (in port order): the port number on the
    /// far side of the edge and the subtree there. Empty at the depth cutoff.
    pub children: Vec<(Port, Box<ViewTree>)>,
}

/// Build the view tree of `v` truncated at `depth` edges.
///
/// Cost is `O(max_degree^depth)` — use only for small graphs/tests.
pub fn view_tree(g: &PortGraph, v: NodeId, depth: usize) -> ViewTree {
    if depth == 0 {
        return ViewTree {
            degree: g.degree(v),
            children: Vec::new(),
        };
    }
    let children = (0..g.degree(v))
        .map(|p| {
            let (u, q) = g.neighbor(v, p);
            (q, Box::new(view_tree(g, u, depth - 1)))
        })
        .collect();
    ViewTree {
        degree: g.degree(v),
        children,
    }
}

/// Iterated view hashing: returns one `u64` per node such that two nodes get
/// equal hashes iff their depth-`depth` views agree (up to hash collisions,
/// which are negligible for the graph sizes dispersion operates at and are
/// cross-checked against exact partition refinement in tests).
pub fn view_hashes_at_depth(g: &PortGraph, depth: usize) -> Vec<u64> {
    let mut h: Vec<u64> = g
        .nodes()
        .map(|v| {
            let mut s = DefaultHasher::new();
            ("deg", g.degree(v)).hash(&mut s);
            s.finish()
        })
        .collect();
    let mut next = vec![0u64; g.n()];
    for _ in 0..depth {
        for v in g.nodes() {
            let mut s = DefaultHasher::new();
            ("node", g.degree(v)).hash(&mut s);
            for p in 0..g.degree(v) {
                let (u, q) = g.neighbor(v, p);
                (p, q, h[u]).hash(&mut s);
            }
            next[v] = s.finish();
        }
        std::mem::swap(&mut h, &mut next);
    }
    h
}

/// True if nodes `a` and `b` have equal views (hash refinement at Norris
/// depth `n - 1`).
pub fn views_equal(g: &PortGraph, a: NodeId, b: NodeId) -> bool {
    let h = view_hashes_at_depth(g, g.n().saturating_sub(1));
    h[a] == h[b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{oriented_ring, path, star};

    #[test]
    fn oriented_ring_views_all_equal() {
        let g = oriented_ring(6).unwrap();
        let h = view_hashes_at_depth(&g, 5);
        assert!(h.iter().all(|&x| x == h[0]));
        assert!(views_equal(&g, 0, 3));
    }

    #[test]
    fn insertion_order_path_is_fully_asymmetric() {
        // With insertion-order ports the two halves of a path get different
        // back-ports, so every view is distinct.
        let g = path(5).unwrap();
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(views_equal(&g, a, b), a == b, "nodes {a},{b}");
            }
        }
    }

    #[test]
    fn mirror_symmetric_path_folds() {
        // A 4-path with mirror-symmetric port labels: 0 <-> 3, 1 <-> 2.
        let g = crate::PortGraph::from_adjacency(vec![
            vec![(1, 1)],
            vec![(2, 0), (0, 0)],
            vec![(1, 0), (3, 0)],
            vec![(2, 1)],
        ])
        .unwrap();
        assert!(views_equal(&g, 0, 3));
        assert!(views_equal(&g, 1, 2));
        assert!(!views_equal(&g, 0, 1));
    }

    #[test]
    fn star_center_distinct_from_leaves() {
        let g = star(5).unwrap();
        assert!(!views_equal(&g, 0, 1));
        // Leaves are pairwise equivalent only if their back-ports agree;
        // with insertion-order ports every leaf sees back-port = its index,
        // i.e. distinct views.
        assert!(!views_equal(&g, 1, 2));
    }

    #[test]
    fn explicit_tree_matches_hashes_on_small_graph() {
        let g = path(4).unwrap();
        let depth = 3;
        let hashes = view_hashes_at_depth(&g, depth);
        for a in g.nodes() {
            for b in g.nodes() {
                let trees_eq = view_tree(&g, a, depth) == view_tree(&g, b, depth);
                assert_eq!(trees_eq, hashes[a] == hashes[b], "nodes {a},{b}");
            }
        }
    }

    #[test]
    fn depth_zero_views_are_degrees() {
        let g = star(4).unwrap();
        let h = view_hashes_at_depth(&g, 0);
        assert_eq!(h[1], h[2]);
        assert_ne!(h[0], h[1]);
    }
}
