//! Isomorphism tests for port-labeled graphs.
//!
//! Rooted isomorphism is decided exactly by canonical forms
//! ([`crate::canonical`]). Unrooted isomorphism is decided by trying every
//! root of one graph against a fixed root of the other — `O(n * m)`, plenty
//! for the map sizes dispersion handles.

use crate::canonical::canonical_form;
use crate::portgraph::{NodeId, PortGraph};

/// True iff `(g1, r1)` and `(g2, r2)` are isomorphic as rooted port-labeled
/// graphs (an isomorphism mapping `r1` to `r2` and preserving all port
/// numbers).
pub fn are_isomorphic_rooted(g1: &PortGraph, r1: NodeId, g2: &PortGraph, r2: NodeId) -> bool {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return false;
    }
    canonical_form(g1, r1) == canonical_form(g2, r2)
}

/// True iff `g1` and `g2` are isomorphic as (unrooted) port-labeled graphs.
pub fn are_isomorphic(g1: &PortGraph, g2: &PortGraph) -> bool {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return false;
    }
    if g1.n() == 0 {
        return true;
    }
    let mut d1: Vec<usize> = g1.nodes().map(|v| g1.degree(v)).collect();
    let mut d2: Vec<usize> = g2.nodes().map(|v| g2.degree(v)).collect();
    d1.sort_unstable();
    d2.sort_unstable();
    if d1 != d2 {
        return false;
    }
    let c1 = canonical_form(g1, 0);
    g2.nodes().any(|r2| canonical_form(g2, r2) == c1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, oriented_ring, path, ring, star};
    use crate::scramble::random_presentation;

    #[test]
    fn graph_isomorphic_to_itself() {
        let g = ring(6).unwrap();
        assert!(are_isomorphic(&g, &g));
        assert!(are_isomorphic_rooted(&g, 3, &g, 3));
    }

    #[test]
    fn random_presentations_are_isomorphic() {
        for seed in 0..6 {
            let g = erdos_renyi_connected(10, 0.3, seed).unwrap();
            let (h, perm) = random_presentation(&g, seed + 100);
            assert!(are_isomorphic(&g, &h), "seed {seed}");
            // Port scrambling changes rooted canonical forms in general, so
            // only the node-relabel part is checkable rooted: relabel alone.
            let relabeled = crate::scramble::relabel_nodes(&g, &perm);
            assert!(are_isomorphic_rooted(&g, 0, &relabeled, perm[0]));
        }
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        assert!(!are_isomorphic(&ring(5).unwrap(), &ring(6).unwrap()));
    }

    #[test]
    fn same_size_different_structure() {
        let g = path(4).unwrap();
        let h = star(4).unwrap();
        assert!(!are_isomorphic(&g, &h));
    }

    #[test]
    fn rings_with_different_port_patterns() {
        // Insertion-order ring vs oriented ring: same anonymous cycle but
        // port structures differ at node 0 only — as *port-labeled* graphs
        // they are NOT isomorphic.
        let g = ring(5).unwrap();
        let h = oriented_ring(5).unwrap();
        assert!(!are_isomorphic(&g, &h));
    }

    #[test]
    fn rooted_distinguishes_roots() {
        let g = path(5).unwrap();
        assert!(are_isomorphic_rooted(&g, 0, &g, 0));
        assert!(!are_isomorphic_rooted(&g, 0, &g, 2));
        // Mirror symmetry of the path maps 0 <-> 4 but flips ports at inner
        // nodes, so rooted iso holds iff port patterns mirror exactly.
        let c0 = canonical_form(&g, 0);
        let c4 = canonical_form(&g, 4);
        assert_eq!(c0 == c4, are_isomorphic_rooted(&g, 0, &g, 4));
    }
}
