//! Spanning trees and Euler tours expressed as port sequences.
//!
//! `Dispersion-Using-Map` (paper §2.2) has each robot traverse a DFS tree of
//! its map; the token-based map construction tours the identified territory.
//! Both need trees whose edges are remembered as *ports*, because ports are
//! all a robot can actually follow.

use crate::portgraph::{NodeId, Port, PortGraph};
use serde::{Deserialize, Serialize};

/// A rooted spanning tree with port annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanningTree {
    /// The root node.
    pub root: NodeId,
    /// `parent[v] = Some((u, p, q))`: `u` is the parent of `v`, reached from
    /// `u` through port `p`, with back-port `q` at `v`. `None` for the root.
    pub parent: Vec<Option<(NodeId, Port, Port)>>,
    /// Nodes in discovery order (root first).
    pub order: Vec<NodeId>,
    /// `children[v]` = child edges `(port_at_v, child)` in port order.
    pub children: Vec<Vec<(Port, NodeId)>>,
}

impl SpanningTree {
    /// Depth of `v` in the tree (root = 0).
    pub fn depth(&self, mut v: NodeId) -> usize {
        let mut d = 0;
        while let Some((u, _, _)) = self.parent[v] {
            v = u;
            d += 1;
        }
        d
    }

    /// Port path from the root to `v` (following tree edges downward).
    pub fn path_from_root(&self, v: NodeId) -> Vec<Port> {
        let mut rev = Vec::new();
        let mut cur = v;
        while let Some((u, p, _)) = self.parent[cur] {
            rev.push(p);
            cur = u;
        }
        rev.reverse();
        rev
    }

    /// Port path from `v` back up to the root (following back-ports).
    pub fn path_to_root(&self, v: NodeId) -> Vec<Port> {
        let mut path = Vec::new();
        let mut cur = v;
        while let Some((u, _, q)) = self.parent[cur] {
            path.push(q);
            cur = u;
        }
        path
    }
}

fn tree_from_parents(
    g: &PortGraph,
    root: NodeId,
    parent: Vec<Option<(NodeId, Port, Port)>>,
    order: Vec<NodeId>,
) -> SpanningTree {
    let mut children: Vec<Vec<(Port, NodeId)>> = vec![Vec::new(); g.n()];
    for &v in &order {
        if let Some((u, p, _)) = parent[v] {
            children[u].push((p, v));
        }
    }
    for ch in children.iter_mut() {
        ch.sort_unstable();
    }
    SpanningTree {
        root,
        parent,
        order,
        children,
    }
}

/// Breadth-first spanning tree from `root`, scanning ports in increasing
/// order. Panics if `g` is not connected.
pub fn bfs_tree(g: &PortGraph, root: NodeId) -> SpanningTree {
    let n = g.n();
    let mut parent: Vec<Option<(NodeId, Port, Port)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    seen[root] = true;
    order.push(root);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let (u, q) = g.neighbor(v, p);
            if !seen[u] {
                seen[u] = true;
                parent[u] = Some((v, p, q));
                order.push(u);
                queue.push_back(u);
            }
        }
    }
    assert_eq!(order.len(), n, "bfs_tree requires a connected graph");
    tree_from_parents(g, root, parent, order)
}

/// Depth-first spanning tree from `root`, scanning ports in increasing
/// order. Panics if `g` is not connected.
pub fn dfs_tree(g: &PortGraph, root: NodeId) -> SpanningTree {
    let n = g.n();
    let mut parent: Vec<Option<(NodeId, Port, Port)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Explicit stack of (node, next port to try).
    let mut stack: Vec<(NodeId, Port)> = vec![(root, 0)];
    seen[root] = true;
    order.push(root);
    while let Some(&mut (v, ref mut p)) = stack.last_mut() {
        if *p >= g.degree(v) {
            stack.pop();
            continue;
        }
        let port = *p;
        *p += 1;
        let (u, q) = g.neighbor(v, port);
        if !seen[u] {
            seen[u] = true;
            parent[u] = Some((v, port, q));
            order.push(u);
            stack.push((u, 0));
        }
    }
    assert_eq!(order.len(), n, "dfs_tree requires a connected graph");
    tree_from_parents(g, root, parent, order)
}

/// The Euler tour of a spanning tree as a port sequence starting and ending
/// at the root: each tree edge is crossed exactly twice (down then up), total
/// length `2 (n - 1)` — the `O(n)`-step traversal used by
/// `Dispersion-Using-Map`.
pub fn euler_tour_ports(tree: &SpanningTree) -> Vec<Port> {
    fn emit(tree: &SpanningTree, v: NodeId, tour: &mut Vec<Port>) {
        for &(p, c) in &tree.children[v] {
            tour.push(p);
            emit(tree, c, tour);
            let (_, _, q) = tree.parent[c].expect("child has parent");
            tour.push(q);
        }
    }
    let mut tour = Vec::new();
    emit(tree, tree.root, &mut tour);
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, path, ring, star};
    use crate::navigate::follow_ports;

    #[test]
    fn bfs_tree_covers_all_nodes() {
        let g = erdos_renyi_connected(12, 0.3, 2).unwrap();
        let t = bfs_tree(&g, 0);
        assert_eq!(t.order.len(), 12);
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
    }

    #[test]
    fn dfs_tree_covers_all_nodes() {
        let g = erdos_renyi_connected(12, 0.3, 4).unwrap();
        let t = dfs_tree(&g, 5);
        assert_eq!(t.order.len(), 12);
        assert_eq!(t.root, 5);
    }

    #[test]
    fn path_from_root_navigates_correctly() {
        let g = ring(8).unwrap();
        let t = bfs_tree(&g, 0);
        for v in g.nodes() {
            let ports = t.path_from_root(v);
            assert_eq!(follow_ports(&g, 0, &ports).unwrap(), v);
            let back = t.path_to_root(v);
            assert_eq!(follow_ports(&g, v, &back).unwrap(), 0);
        }
    }

    #[test]
    fn euler_tour_returns_to_root_and_covers() {
        for (g, root) in [
            (path(6).unwrap(), 0),
            (ring(7).unwrap(), 3),
            (star(5).unwrap(), 2),
            (erdos_renyi_connected(11, 0.3, 8).unwrap(), 1),
        ] {
            let t = dfs_tree(&g, root);
            let tour = euler_tour_ports(&t);
            assert_eq!(tour.len(), 2 * (g.n() - 1));
            // Walk the tour, checking it visits every node and returns.
            let mut visited = vec![false; g.n()];
            let mut cur = root;
            visited[cur] = true;
            for &p in &tour {
                let (u, _) = g.neighbor(cur, p);
                cur = u;
                visited[cur] = true;
            }
            assert_eq!(cur, root, "tour must close");
            assert!(visited.iter().all(|&b| b), "tour must cover all nodes");
        }
    }

    #[test]
    fn depth_matches_path_length() {
        let g = path(6).unwrap();
        let t = bfs_tree(&g, 0);
        for v in g.nodes() {
            assert_eq!(t.depth(v), t.path_from_root(v).len());
        }
    }
}
