//! Walking port sequences and computing port paths.
//!
//! Everything a robot does physically reduces to "follow this sequence of
//! ports". These helpers execute such walks on a graph (for the simulator
//! and for robots' local planning on their private maps) and compute port
//! paths between nodes.

use crate::error::GraphError;
use crate::portgraph::{NodeId, Port, PortGraph};
use std::collections::VecDeque;

/// The full trace of a walk: nodes visited (`len = ports.len() + 1`) and the
/// entry back-port recorded at each step (what a robot remembers so it can
/// reverse its walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Visited nodes, starting node first.
    pub nodes: Vec<NodeId>,
    /// `back_ports[i]` = the far-side port of the `i`-th edge crossed, i.e.
    /// the port to follow from `nodes[i + 1]` to return to `nodes[i]`.
    pub back_ports: Vec<Port>,
}

impl Walk {
    /// Final node of the walk.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("walk has at least the start node")
    }

    /// The port sequence that retraces this walk backwards (end to start).
    pub fn reverse_ports(&self) -> Vec<Port> {
        self.back_ports.iter().rev().copied().collect()
    }
}

/// Execute a port sequence from `start`, returning the full [`Walk`].
pub fn trace_walk(g: &PortGraph, start: NodeId, ports: &[Port]) -> Result<Walk, GraphError> {
    let mut nodes = Vec::with_capacity(ports.len() + 1);
    let mut back_ports = Vec::with_capacity(ports.len());
    let mut cur = start;
    nodes.push(cur);
    for (i, &p) in ports.iter().enumerate() {
        if p >= g.degree(cur) {
            return Err(GraphError::BadWalk {
                step: i,
                node: cur,
                port: p,
            });
        }
        let (u, q) = g.neighbor(cur, p);
        cur = u;
        nodes.push(cur);
        back_ports.push(q);
    }
    Ok(Walk { nodes, back_ports })
}

/// Execute a port sequence from `start`, returning only the final node.
pub fn follow_ports(g: &PortGraph, start: NodeId, ports: &[Port]) -> Result<NodeId, GraphError> {
    let mut cur = start;
    for (i, &p) in ports.iter().enumerate() {
        if p >= g.degree(cur) {
            return Err(GraphError::BadWalk {
                step: i,
                node: cur,
                port: p,
            });
        }
        cur = g.neighbor(cur, p).0;
    }
    Ok(cur)
}

/// Shortest port path from `from` to `to` (BFS over ports in increasing
/// order, so the result is deterministic). Returns `None` if unreachable.
pub fn shortest_path_ports(g: &PortGraph, from: NodeId, to: NodeId) -> Option<Vec<Port>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<(NodeId, Port)>> = vec![None; g.n()];
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let (u, _) = g.neighbor(v, p);
            if !seen[u] {
                seen[u] = true;
                pred[u] = Some((v, p));
                if u == to {
                    let mut rev = Vec::new();
                    let mut cur = to;
                    while let Some((w, port)) = pred[cur] {
                        rev.push(port);
                        cur = w;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(u);
            }
        }
    }
    None
}

/// All-pairs hop distances (BFS from every node). `usize::MAX` marks
/// unreachable pairs.
pub fn distances(g: &PortGraph) -> Vec<Vec<usize>> {
    let n = g.n();
    let mut dist = vec![vec![usize::MAX; n]; n];
    for s in 0..n {
        dist[s][s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for p in 0..g.degree(v) {
                let (u, _) = g.neighbor(v, p);
                if dist[s][u] == usize::MAX {
                    dist[s][u] = dist[s][v] + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, path, ring};

    #[test]
    fn walk_and_reverse_roundtrip() {
        let g = ring(6).unwrap();
        let ports = vec![0, 0, 0];
        let walk = trace_walk(&g, 0, &ports).unwrap();
        let end = walk.end();
        assert_ne!(end, 0);
        let back = walk.reverse_ports();
        assert_eq!(follow_ports(&g, end, &back).unwrap(), 0);
    }

    #[test]
    fn bad_port_detected() {
        let g = path(3).unwrap();
        // Node 0 has degree 1; port 1 is invalid.
        let err = follow_ports(&g, 0, &[1]);
        assert!(matches!(
            err,
            Err(GraphError::BadWalk {
                step: 0,
                node: 0,
                port: 1
            })
        ));
    }

    #[test]
    fn shortest_path_found_and_minimal() {
        let g = ring(8).unwrap();
        let d = distances(&g);
        for from in g.nodes() {
            for to in g.nodes() {
                let sp = shortest_path_ports(&g, from, to).unwrap();
                assert_eq!(sp.len(), d[from][to], "({from},{to})");
                assert_eq!(follow_ports(&g, from, &sp).unwrap(), to);
            }
        }
    }

    #[test]
    fn distances_symmetric_on_undirected() {
        let g = erdos_renyi_connected(10, 0.3, 6).unwrap();
        let d = distances(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(d[a][b], d[b][a]);
            }
        }
    }

    #[test]
    fn empty_path_for_same_node() {
        let g = path(4).unwrap();
        assert_eq!(shortest_path_ports(&g, 2, 2).unwrap(), Vec::<usize>::new());
    }
}
