//! Compound and named graphs: lollipops, barbells, binary trees, Petersen.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::portgraph::PortGraph;

/// A lollipop: a clique on `clique` nodes with a path of `tail` extra nodes
/// attached to clique node 0. Lollipops are the classic worst case for
/// random-walk cover time — a stress fixture for the exploration substrate.
pub fn lollipop(clique: usize, tail: usize) -> Result<PortGraph, GraphError> {
    if clique < 3 || tail < 1 {
        return Err(GraphError::InvalidParameters(format!(
            "lollipop needs clique >= 3 and tail >= 1, got {clique}, {tail}"
        )));
    }
    let n = clique + tail;
    let mut b = PortGraphBuilder::with_nodes(n);
    for u in 0..clique {
        for v in u + 1..clique {
            b.add_edge(u, v)?;
        }
    }
    b.add_edge(0, clique)?;
    for v in clique..n - 1 {
        b.add_edge(v, v + 1)?;
    }
    b.build_connected()
}

/// A barbell: two cliques of size `clique` joined by a path of `bridge`
/// intermediate nodes (`bridge >= 1`).
pub fn barbell(clique: usize, bridge: usize) -> Result<PortGraph, GraphError> {
    if clique < 3 || bridge < 1 {
        return Err(GraphError::InvalidParameters(format!(
            "barbell needs clique >= 3 and bridge >= 1, got {clique}, {bridge}"
        )));
    }
    let n = 2 * clique + bridge;
    let mut b = PortGraphBuilder::with_nodes(n);
    for base in [0, clique] {
        for u in base..base + clique {
            for v in u + 1..base + clique {
                b.add_edge(u, v)?;
            }
        }
    }
    // Bridge nodes occupy the tail of the id range.
    let first_bridge = 2 * clique;
    b.add_edge(0, first_bridge)?;
    for v in first_bridge..n - 1 {
        b.add_edge(v, v + 1)?;
    }
    b.add_edge(n - 1, clique)?;
    b.build_connected()
}

/// A complete binary tree with `levels >= 2` levels (`2^levels - 1` nodes).
pub fn binary_tree(levels: usize) -> Result<PortGraph, GraphError> {
    if !(2..=20).contains(&levels) {
        return Err(GraphError::InvalidParameters(format!(
            "binary_tree needs 2 <= levels <= 20, got {levels}"
        )));
    }
    let n = (1usize << levels) - 1;
    let mut b = PortGraphBuilder::with_nodes(n);
    for v in 1..n {
        b.add_edge((v - 1) / 2, v)?;
    }
    b.build_connected()
}

/// The Petersen graph (10 nodes, 3-regular, vertex-transitive).
///
/// Being vertex-transitive, all its views coincide under the canonical port
/// assignment below — a fixture for the "quotient graph not isomorphic to G"
/// branch of Theorem 1 and for gathering infeasibility.
pub fn petersen() -> Result<PortGraph, GraphError> {
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i <-> i+5. Explicit
    // rotation-invariant port pattern: port 0 = "next" in own cycle (+1
    // outer, +2 inner), port 1 = "previous", port 2 = spoke. The outer
    // rotation i -> i+1 (mod 5) on both cycles is then a port-preserving
    // automorphism, so views collapse along each 5-orbit.
    let mut adj: Vec<Vec<(usize, usize)>> = Vec::with_capacity(10);
    for i in 0..5 {
        adj.push(vec![((i + 1) % 5, 1), ((i + 4) % 5, 0), (i + 5, 2)]);
    }
    for i in 0..5 {
        adj.push(vec![(5 + (i + 2) % 5, 1), (5 + (i + 3) % 5, 0), (i, 2)]);
    }
    PortGraph::from_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 3).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 10 + 3);
        assert_eq!(g.degree(0), 5); // clique + tail attachment
        assert_eq!(g.degree(7), 1); // tail tip
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 6 + 6 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(4).unwrap();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn petersen_is_3_regular() {
        let g = petersen().unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(g.is_simple());
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(lollipop(2, 1).is_err());
        assert!(barbell(3, 0).is_err());
        assert!(binary_tree(1).is_err());
    }
}
