//! Rings, paths, stars and complete graphs.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::portgraph::PortGraph;

/// A ring on `n >= 3` nodes with ports assigned in edge-insertion order
/// (node 0 connects to 1 then to n-1, so its ports differ from inner nodes').
///
/// The previous work on Byzantine dispersion (Molla et al., ALGOSENSORS'20)
/// was confined to rings; rings are our bridge back to that baseline.
pub fn ring(n: usize) -> Result<PortGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "ring needs n >= 3, got {n}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n)?;
    }
    b.build_connected()
}

/// A ring on `n >= 3` nodes where every node uses port 0 for its clockwise
/// neighbor and port 1 for its counter-clockwise neighbor.
///
/// This *oriented* ring is vertex-transitive: all views are equal, the
/// quotient graph is a single node, and view-based symmetry breaking is
/// impossible — a useful negative fixture for gathering feasibility tests.
pub fn oriented_ring(n: usize) -> Result<PortGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "oriented_ring needs n >= 3, got {n}"
        )));
    }
    let adj = (0..n)
        .map(|v| vec![((v + 1) % n, 1), ((v + n - 1) % n, 0)])
        .collect();
    PortGraph::from_adjacency(adj)
}

/// A path on `n >= 2` nodes: `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> Result<PortGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "path needs n >= 2, got {n}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(n);
    for v in 0..n - 1 {
        b.add_edge(v, v + 1)?;
    }
    b.build_connected()
}

/// A star with `n - 1` leaves around center node 0 (`n >= 2`).
pub fn star(n: usize) -> Result<PortGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "star needs n >= 2, got {n}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(n);
    for v in 1..n {
        b.add_edge(0, v)?;
    }
    b.build_connected()
}

/// The complete graph `K_n` (`n >= 2`).
pub fn complete(n: usize) -> Result<PortGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "complete needs n >= 2, got {n}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v)?;
        }
    }
    b.build_connected()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let g = ring(7).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(g.is_simple());
    }

    #[test]
    fn oriented_ring_uniform_ports() {
        let g = oriented_ring(6).unwrap();
        for v in g.nodes() {
            let (cw, back) = g.neighbor(v, 0);
            assert_eq!(cw, (v + 1) % 6);
            assert_eq!(back, 1);
        }
    }

    #[test]
    fn path_endpoints_have_degree_one() {
        let g = path(5).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn star_center_degree() {
        let g = star(9).unwrap();
        assert_eq!(g.degree(0), 8);
        assert!((1..9).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn tiny_parameters_rejected() {
        assert!(ring(2).is_err());
        assert!(oriented_ring(1).is_err());
        assert!(path(1).is_err());
        assert!(star(1).is_err());
        assert!(complete(1).is_err());
    }
}
