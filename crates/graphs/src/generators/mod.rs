//! Graph families used throughout the paper's setting and our benchmarks.
//!
//! Every generator returns a connected [`crate::PortGraph`] with a
//! deterministic port assignment; compose with
//! [`crate::scramble::scramble_ports`] / [`crate::scramble::relabel_nodes`]
//! to obtain other presentations of the same anonymous graph.

mod classic;
mod compound;
mod lattice;
mod random;

pub use classic::{complete, oriented_ring, path, ring, star};
pub use compound::{barbell, binary_tree, lollipop, petersen};
pub use lattice::{grid, hypercube, torus};
pub use random::{asymmetric_gnp, erdos_renyi_connected, random_regular, random_tree};
