//! Grid, torus and hypercube lattices.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::portgraph::PortGraph;

/// An `r x c` grid (`r, c >= 1`, at least 2 nodes total). Node `(i, j)` is
/// `i * c + j`; edges go to the right neighbor then the down neighbor, so
/// ports follow insertion order.
pub fn grid(r: usize, c: usize) -> Result<PortGraph, GraphError> {
    if r * c < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "grid needs >= 2 nodes, got {r}x{c}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(r * c);
    for i in 0..r {
        for j in 0..c {
            let v = i * c + j;
            if j + 1 < c {
                b.add_edge(v, v + 1)?;
            }
            if i + 1 < r {
                b.add_edge(v, v + c)?;
            }
        }
    }
    b.build_connected()
}

/// An `r x c` torus (`r, c >= 3` so the graph stays simple).
pub fn torus(r: usize, c: usize) -> Result<PortGraph, GraphError> {
    if r < 3 || c < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "torus needs r, c >= 3, got {r}x{c}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(r * c);
    for i in 0..r {
        for j in 0..c {
            let v = i * c + j;
            let right = i * c + (j + 1) % c;
            let down = ((i + 1) % r) * c + j;
            if !b.has_edge(v, right) {
                b.add_edge(v, right)?;
            }
            if !b.has_edge(v, down) {
                b.add_edge(v, down)?;
            }
        }
    }
    b.build_connected()
}

/// The `d`-dimensional hypercube on `2^d` nodes (`1 <= d <= 20`). Node `v`
/// uses port `i` for the neighbor differing in bit `i` — the canonical
/// dimension-labeled port assignment.
pub fn hypercube(d: usize) -> Result<PortGraph, GraphError> {
    if d == 0 || d > 20 {
        return Err(GraphError::InvalidParameters(format!(
            "hypercube needs 1 <= d <= 20, got {d}"
        )));
    }
    let n = 1usize << d;
    let adj = (0..n)
        .map(|v| (0..d).map(|i| (v ^ (1 << i), i)).collect())
        .collect();
    PortGraph::from_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.m(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(g.is_simple());
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 5).unwrap();
        assert_eq!(g.n(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 30);
        assert!(g.is_simple());
    }

    #[test]
    fn hypercube_ports_are_dimensions() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        for v in g.nodes() {
            for i in 0..4 {
                assert_eq!(g.neighbor(v, i), (v ^ (1 << i), i));
            }
        }
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(grid(1, 1).is_err());
        assert!(torus(2, 5).is_err());
        assert!(hypercube(0).is_err());
    }
}
