//! Seeded random graph families.
//!
//! All generators are deterministic in their seed so experiments are
//! reproducible cell by cell.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::portgraph::PortGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A uniformly random labeled tree on `n >= 2` nodes via a random Prüfer
/// sequence.
pub fn random_tree(n: usize, seed: u64) -> Result<PortGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "tree needs n >= 2, got {n}"
        )));
    }
    let mut b = PortGraphBuilder::with_nodes(n);
    if n == 2 {
        b.add_edge(0, 1)?;
        return b.build_connected();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    // Standard Prüfer decoding with a sorted set of leaves.
    let mut leaves: std::collections::BTreeSet<usize> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &v in &prufer {
        let leaf = *leaves
            .iter()
            .next()
            .expect("prufer decoding always has a leaf");
        leaves.remove(&leaf);
        b.add_edge(leaf, v)?;
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.insert(v);
        }
    }
    let mut it = leaves.iter();
    let (u, v) = (*it.next().unwrap(), *it.next().unwrap());
    b.add_edge(u, v)?;
    b.build_connected()
}

/// A connected Erdős–Rényi graph `G(n, p)`: sample `G(n, p)`, then connect
/// the components with a random spanning set of extra edges. For
/// `p >= 2 ln n / n` the patching step is rarely needed.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Result<PortGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "G(n,p) needs n >= 2, got {n}"
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters(format!(
            "p must be in [0,1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PortGraphBuilder::with_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v)?;
            }
        }
    }
    // Patch connectivity: union-find over the sampled edges, then link
    // component representatives in a random chain.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for u in 0..n {
        for p_ in 0..b.degree(u) {
            // builder does not expose neighbors; track unions during sampling
            // instead would be cleaner, but degrees are small; rebuild below.
            let _ = p_;
        }
    }
    // Rebuild unions from the builder state by probing has_edge pairs is
    // O(n^2); acceptable for generator-scale n and keeps the builder simple.
    for u in 0..n {
        for v in u + 1..n {
            if b.has_edge(u, v) {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru != rv {
                    parent[ru] = rv;
                }
            }
        }
    }
    let mut reps: Vec<usize> = (0..n).filter(|&v| find(&mut parent, v) == v).collect();
    reps.shuffle(&mut rng);
    for w in reps.windows(2) {
        b.add_edge(w[0], w[1])?;
        let (r0, r1) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
        parent[r0] = r1;
    }
    b.build_connected()
}

/// A connected, **view-asymmetric** Erdős–Rényi instance at the benchmark
/// density `p = (8/n)` clamped to `[0.2, 0.5]`: the graph family every
/// Table 1 precondition holds on (a view-singleton class exists, so
/// view-based gathering has a target). Symmetric draws — rare but possible
/// at small `n` — are rejected and resampled on a deterministic seed
/// schedule, so the result is a pure function of `(n, seed)`.
///
/// This is the shared definition behind `bd-bench`'s sweep graphs and the
/// serving layer's by-coordinate graph sources: both must materialize the
/// *identical* graph for a given `(n, seed)` or content-addressed result
/// caching would never hit across them.
pub fn asymmetric_gnp(n: usize, seed: u64) -> Result<PortGraph, GraphError> {
    let p = (8.0 / n as f64).clamp(0.2, 0.5);
    for attempt in 0..64 {
        let g = erdos_renyi_connected(n, p, seed.wrapping_add(attempt * 1_000_003))?;
        let q = crate::quotient::quotient_graph(&g);
        if q.singleton_classes().next().is_some() {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameters(format!(
        "no view-asymmetric G({n},{p}) instance found near seed {seed}"
    )))
}

/// A random simple `d`-regular connected graph on `n` nodes via the pairing
/// model with restarts (`n * d` even, `d < n`, `d >= 2`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<PortGraph, GraphError> {
    if d < 2 || d >= n {
        return Err(GraphError::InvalidParameters(format!(
            "random_regular needs 2 <= d < n, got d={d}, n={n}"
        )));
    }
    if (n * d) % 2 != 0 {
        return Err(GraphError::InvalidParameters(format!(
            "random_regular needs n*d even, got n={n}, d={d}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Pairing model: up to a generous number of restarts, then give up.
    'attempt: for _ in 0..10_000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
        stubs.shuffle(&mut rng);
        let mut b = PortGraphBuilder::with_nodes(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || b.has_edge(u, v) {
                continue 'attempt;
            }
            b.add_edge(u, v)?;
        }
        let g = b.build()?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameters(format!(
        "failed to sample a connected {d}-regular graph on {n} nodes"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetric_gnp_is_deterministic_connected_and_asymmetric() {
        for n in [8usize, 12, 16] {
            let a = asymmetric_gnp(n, 1000).unwrap();
            let b = asymmetric_gnp(n, 1000).unwrap();
            assert_eq!(a, b, "pure function of (n, seed)");
            assert!(a.is_connected());
            let q = crate::quotient::quotient_graph(&a);
            assert!(q.singleton_classes().next().is_some(), "n = {n}");
        }
    }

    #[test]
    fn tree_has_n_minus_1_edges() {
        for seed in 0..5 {
            let g = random_tree(12, seed).unwrap();
            assert_eq!(g.n(), 12);
            assert_eq!(g.m(), 11);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn tree_deterministic_in_seed() {
        assert_eq!(random_tree(20, 7).unwrap(), random_tree(20, 7).unwrap());
    }

    #[test]
    fn erdos_renyi_connected_always() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(16, 0.05, seed).unwrap();
            assert!(g.is_connected(), "seed {seed}");
            assert!(g.is_simple());
        }
    }

    #[test]
    fn erdos_renyi_extreme_p() {
        let sparse = erdos_renyi_connected(10, 0.0, 1).unwrap();
        assert!(sparse.is_connected());
        assert_eq!(sparse.m(), 9); // pure patch chain
        let dense = erdos_renyi_connected(8, 1.0, 1).unwrap();
        assert_eq!(dense.m(), 28);
    }

    #[test]
    fn regular_graph_is_regular_and_connected() {
        for seed in 0..3 {
            let g = random_regular(14, 3, seed).unwrap();
            assert!(g.nodes().all(|v| g.degree(v) == 3));
            assert!(g.is_connected());
            assert!(g.is_simple());
        }
    }

    #[test]
    fn regular_parameter_validation() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
        assert!(random_regular(4, 1, 0).is_err()); // d < 2
    }
}
