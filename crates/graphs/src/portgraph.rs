//! The core anonymous port-labeled graph type.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Index of a node. Nodes are *anonymous* from the robots' perspective — node
/// ids exist only inside the simulator and inside a robot's privately
/// constructed map, never on the graph itself.
pub type NodeId = usize;

/// A local port number at a node, in `0..degree(node)`.
///
/// The paper numbers ports `1..=δ`; we use the equivalent 0-based range.
pub type Port = usize;

/// An undirected graph with local port labels.
///
/// Representation: `adj[v][p] = (u, q)` means the edge leaving node `v`
/// through port `p` arrives at node `u`, which numbers the same edge with its
/// own port `q`. The symmetry invariant `adj[u][q] == (v, p)` always holds for
/// a validated graph. Self-loops and parallel edges are representable (they
/// occur in *quotient graphs*, §2.1 of the paper) but the standard generators
/// produce simple graphs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortGraph {
    adj: Vec<Vec<(NodeId, Port)>>,
}

impl PortGraph {
    /// Create a graph directly from an adjacency structure.
    ///
    /// Returns an error unless the port structure is symmetric.
    pub fn from_adjacency(adj: Vec<Vec<(NodeId, Port)>>) -> Result<Self, GraphError> {
        let g = PortGraph { adj };
        g.validate()?;
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (self-loops count once).
    pub fn m(&self) -> usize {
        let endpoints: usize = self.adj.iter().map(|a| a.len()).sum();
        // A self-loop attached to a single port contributes one endpoint;
        // detect those to count correctly.
        let single_port_loops = self
            .adj
            .iter()
            .enumerate()
            .flat_map(|(v, a)| a.iter().enumerate().map(move |(p, e)| (v, p, e)))
            .filter(|&(v, p, &(u, q))| u == v && q == p)
            .count();
        (endpoints + single_port_loops) / 2
    }

    /// Degree of node `v` (number of ports).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// The endpoint reached by leaving `v` through port `p`, together with the
    /// port number assigned to the edge on the far side.
    #[inline]
    pub fn neighbor(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        self.adj[v][p]
    }

    /// Checked variant of [`PortGraph::neighbor`].
    pub fn try_neighbor(&self, v: NodeId, p: Port) -> Result<(NodeId, Port), GraphError> {
        if v >= self.n() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                n: self.n(),
            });
        }
        self.adj[v]
            .get(p)
            .copied()
            .ok_or(GraphError::PortOutOfRange {
                node: v,
                port: p,
                degree: self.adj[v].len(),
            })
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n()
    }

    /// Iterate over all `(node, port, neighbor, back_port)` directed edge slots.
    pub fn port_entries(&self) -> impl Iterator<Item = (NodeId, Port, NodeId, Port)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(v, a)| a.iter().enumerate().map(move |(p, &(u, q))| (v, p, u, q)))
    }

    /// Iterate over undirected edges as `(u, p, v, q)` with `(u, p) <= (v, q)`
    /// lexicographically, each edge once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Port, NodeId, Port)> + '_ {
        self.port_entries().filter(|&(v, p, u, q)| (v, p) <= (u, q))
    }

    /// Validate the symmetry invariant and port-range correctness.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (v, ports) in self.adj.iter().enumerate() {
            for (p, &(u, q)) in ports.iter().enumerate() {
                if u >= self.n() {
                    return Err(GraphError::NodeOutOfRange {
                        node: u,
                        n: self.n(),
                    });
                }
                if q >= self.adj[u].len() {
                    return Err(GraphError::PortOutOfRange {
                        node: u,
                        port: q,
                        degree: self.adj[u].len(),
                    });
                }
                if self.adj[u][q] != (v, p) {
                    return Err(GraphError::AsymmetricPorts { node: v, port: p });
                }
            }
        }
        Ok(())
    }

    /// Whether the graph is connected. The empty graph is considered
    /// connected; isolated nodes make a multi-node graph disconnected.
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n()
    }

    /// Validate connectivity as well as port symmetry.
    pub fn validate_connected(&self) -> Result<(), GraphError> {
        self.validate()?;
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// True if the graph has no self-loops and no parallel edges.
    pub fn is_simple(&self) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        for (v, p, u, q) in self.port_entries() {
            if v == u {
                return false;
            }
            // Count each undirected edge once.
            if (v, p) <= (u, q) && !seen.insert((v.min(u), v.max(u))) {
                return false;
            }
        }
        true
    }

    /// Raw access to the adjacency lists (read-only).
    pub fn adjacency(&self) -> &[Vec<(NodeId, Port)>] {
        &self.adj
    }

    /// A copy of this graph with the `u`–`v` edge removed (an **edge
    /// failure**). The vacated port at each endpoint closes the gap: every
    /// higher-numbered port shifts down by one, and all far-side references
    /// to those ports are re-pointed, so the result satisfies the symmetry
    /// invariant. If parallel `u`–`v` edges exist the one with the lowest
    /// port at `u` fails.
    ///
    /// Connectivity is *not* checked here — a failure may legitimately
    /// split the graph, and it is the caller's job to decide whether a
    /// disconnected world is acceptable (the dynamic scheduler rejects
    /// it at validation time).
    pub fn without_edge(&self, u: NodeId, v: NodeId) -> Result<PortGraph, GraphError> {
        let n = self.n();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(GraphError::InvalidParameters(
                "cannot fail a self-loop".into(),
            ));
        }
        let p = self.adj[u]
            .iter()
            .position(|&(x, _)| x == v)
            .ok_or_else(|| GraphError::InvalidParameters(format!("no edge {u}-{v} to fail")))?;
        let q = self.adj[u][p].1;
        let mut adj = self.adj.clone();
        adj[u].remove(p);
        adj[v].remove(q);
        for ports in adj.iter_mut() {
            for entry in ports.iter_mut() {
                if entry.0 == u && entry.1 > p {
                    entry.1 -= 1;
                }
                if entry.0 == v && entry.1 > q {
                    entry.1 -= 1;
                }
            }
        }
        PortGraph::from_adjacency(adj)
    }

    /// A copy of this graph with a fresh `u`–`v` edge (an **edge heal**).
    /// The new edge takes the next free port at each endpoint — healing a
    /// failed edge restores the topology, though not necessarily the
    /// original port numbering (anonymous robots never observe global port
    /// labels, and the dynamic layer replans per epoch, so only topology
    /// matters). Refuses self-loops and already-adjacent pairs: the
    /// mutable-world layer deals in simple graphs.
    pub fn with_edge(&self, u: NodeId, v: NodeId) -> Result<PortGraph, GraphError> {
        let n = self.n();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(GraphError::InvalidParameters(
                "cannot heal a self-loop".into(),
            ));
        }
        if self.adj[u].iter().any(|&(x, _)| x == v) {
            return Err(GraphError::InvalidParameters(format!(
                "edge {u}-{v} already present"
            )));
        }
        let mut adj = self.adj.clone();
        let p = adj[u].len();
        let q = adj[v].len();
        adj[u].push((v, q));
        adj[v].push((u, p));
        PortGraph::from_adjacency(adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> PortGraph {
        // Triangle where every node uses port 0 for its clockwise neighbor.
        PortGraph::from_adjacency(vec![
            vec![(1, 1), (2, 0)],
            vec![(2, 1), (0, 0)],
            vec![(0, 1), (1, 0)],
        ])
        .unwrap()
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert!(g.is_simple());
    }

    #[test]
    fn neighbor_roundtrip() {
        let g = triangle();
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (u, q) = g.neighbor(v, p);
                assert_eq!(g.neighbor(u, q), (v, p), "symmetry at ({v},{p})");
            }
        }
    }

    #[test]
    fn asymmetric_ports_rejected() {
        let bad = PortGraph::from_adjacency(vec![vec![(1, 5)], vec![(0, 0)]]);
        assert!(matches!(bad, Err(GraphError::PortOutOfRange { .. })));
        let bad2 = PortGraph::from_adjacency(vec![vec![(1, 0), (1, 1)], vec![(0, 1), (0, 0)]]);
        assert!(matches!(bad2, Err(GraphError::AsymmetricPorts { .. })));
    }

    #[test]
    fn self_loop_counted_once() {
        // One node with a self-loop occupying two ports.
        let g = PortGraph::from_adjacency(vec![vec![(0, 1), (0, 0)]]).unwrap();
        assert_eq!(g.m(), 1);
        assert!(!g.is_simple());
        // Self-loop on a single port (possible in quotient graphs).
        let g2 = PortGraph::from_adjacency(vec![vec![(0, 0)]]).unwrap();
        assert_eq!(g2.m(), 1);
    }

    #[test]
    fn disconnected_detected() {
        let g =
            PortGraph::from_adjacency(vec![vec![(1, 0)], vec![(0, 0)], vec![(3, 0)], vec![(2, 0)]])
                .unwrap();
        assert!(!g.is_connected());
        assert!(matches!(
            g.validate_connected(),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn try_neighbor_bounds() {
        let g = triangle();
        assert!(g.try_neighbor(0, 0).is_ok());
        assert!(matches!(
            g.try_neighbor(0, 9),
            Err(GraphError::PortOutOfRange { .. })
        ));
        assert!(matches!(
            g.try_neighbor(7, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn edge_failure_keeps_symmetry_and_shifts_ports() {
        // Square 0-1-2-3-0 plus the 0-2 diagonal: failing the diagonal
        // leaves a 4-cycle with coherent ports everywhere.
        let g = PortGraph::from_adjacency(vec![
            vec![(1, 0), (3, 1), (2, 2)],
            vec![(0, 0), (2, 0)],
            vec![(1, 1), (3, 0), (0, 2)],
            vec![(2, 1), (0, 1)],
        ])
        .unwrap();
        let cut = g.without_edge(0, 2).unwrap();
        assert_eq!(cut.m(), 4);
        assert_eq!(cut.degree(0), 2);
        assert_eq!(cut.degree(2), 2);
        cut.validate().unwrap();
        assert!(cut.is_connected());
        // Failing a cycle edge next disconnects nothing; failing a bridge
        // yields a valid but disconnected graph (the caller must decide).
        let chopped = cut.without_edge(0, 1).unwrap();
        chopped.validate().unwrap();
        assert!(chopped.is_connected());
        let split = chopped.without_edge(2, 3).unwrap();
        split.validate().unwrap();
        assert!(!split.is_connected());
    }

    #[test]
    fn edge_heal_restores_topology() {
        let g = triangle();
        let cut = g.without_edge(0, 1).unwrap();
        assert_eq!(cut.m(), 2);
        let healed = cut.with_edge(0, 1).unwrap();
        healed.validate().unwrap();
        assert_eq!(healed.m(), 3);
        assert!(healed.is_simple());
        // Topology matches the original triangle even if port labels moved.
        for v in healed.nodes() {
            let mut a: Vec<NodeId> = healed.adjacency()[v].iter().map(|e| e.0).collect();
            let mut b: Vec<NodeId> = g.adjacency()[v].iter().map(|e| e.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighborhood of {v}");
        }
    }

    #[test]
    fn edge_mutations_reject_nonsense() {
        let g = triangle();
        assert!(matches!(
            g.without_edge(0, 0),
            Err(GraphError::InvalidParameters(_))
        ));
        assert!(matches!(
            g.with_edge(0, 1),
            Err(GraphError::InvalidParameters(_))
        ));
        assert!(matches!(
            g.with_edge(0, 9),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        let cut = g.without_edge(1, 2).unwrap();
        assert!(matches!(
            cut.without_edge(1, 2),
            Err(GraphError::InvalidParameters(_))
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let g2: PortGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }
}
