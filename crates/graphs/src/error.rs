//! Error type shared across the graph substrate.

use std::fmt;

/// Errors raised while constructing or validating port-labeled graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was out of range.
    NodeOutOfRange { node: usize, n: usize },
    /// A port index was out of range for the node's degree.
    PortOutOfRange {
        node: usize,
        port: usize,
        degree: usize,
    },
    /// The port structure is not symmetric: following `(node, port)` and
    /// coming back does not return to the same `(node, port)`.
    AsymmetricPorts { node: usize, port: usize },
    /// The graph is not connected (dispersion is only defined on connected
    /// graphs: robots must be able to reach every node).
    Disconnected,
    /// A generator was asked for parameters that admit no graph
    /// (e.g. a 3-regular graph on 5 nodes).
    InvalidParameters(String),
    /// A port sequence walked off the graph (port >= degree of current node).
    BadWalk {
        step: usize,
        node: usize,
        port: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::PortOutOfRange { node, port, degree } => {
                write!(
                    f,
                    "port {port} out of range at node {node} (degree {degree})"
                )
            }
            GraphError::AsymmetricPorts { node, port } => {
                write!(f, "asymmetric port structure at node {node}, port {port}")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            GraphError::BadWalk { step, node, port } => {
                write!(f, "walk step {step}: port {port} invalid at node {node}")
            }
        }
    }
}

impl std::error::Error for GraphError {}
