//! A tiny blocking client for the daemon's JSON API — the test suites'
//! and examples' way of speaking to `bd-serve` without hand-writing HTTP.
//!
//! Every call carries connect and read/write deadlines
//! ([`ClientConfig`]; defaults even when retries are off), and stalls
//! surface as the typed [`ServiceError::Timeout`] rather than hanging or
//! blurring into generic I/O errors. With `retries > 0` the client
//! retries transport-level failures (connect/read timeouts, resets,
//! garbage, 5xx/429) under capped exponential backoff with deterministic
//! jitter. Retrying is safe for **every** request in this API because
//! results are content-addressed by `SpecDigest`: re-submitting a batch
//! the daemon already ran replays stored outcomes instead of redoing
//! work. Store verdicts and 4xx answers are never retried — they are
//! answers, not weather.

use crate::error::ServiceError;
use crate::http;
use crate::protocol::{AuditReply, BatchAccepted, BatchReply, BatchRequest, Health, StatsReply};
use serde::Deserialize;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Deadlines and retry policy for one [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Longest a TCP connect may take.
    pub connect_timeout: Duration,
    /// Read/write deadline for one request/response exchange.
    pub io_timeout: Duration,
    /// Retries *after* the first attempt (0 = single attempt, the
    /// default).
    pub retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: http::IO_TIMEOUT,
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl ClientConfig {
    /// The default policy with `retries` retries.
    pub fn with_retries(retries: u32) -> ClientConfig {
        ClientConfig {
            retries,
            ..ClientConfig::default()
        }
    }

    /// An impatient config for drills and tests: both deadlines set to
    /// `d`, no retries.
    pub fn impatient(d: Duration) -> ClientConfig {
        ClientConfig {
            connect_timeout: d,
            io_timeout: d,
            ..ClientConfig::default()
        }
    }

    /// Backoff before retry attempt `attempt` (1-based): capped
    /// exponential plus deterministic jitter in `[0, delay/2]`, so
    /// simultaneous clients desynchronize without the client owning an
    /// RNG.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_cap);
        let half = exp.as_millis().max(2) as u64 / 2;
        let mixed = (u64::from(attempt))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
        exp + Duration::from_millis(mixed % half)
    }
}

/// A handle on one daemon address. Connections are per-call
/// (`Connection: close`), so the client is freely cloneable and `Sync`.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// A client for the daemon at `addr` with the default deadlines and
    /// no retries.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            config: ClientConfig::default(),
        }
    }

    /// A client with an explicit [`ClientConfig`].
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        Client { addr, config }
    }

    /// The active config.
    pub fn config(&self) -> ClientConfig {
        self.config
    }

    /// One HTTP exchange under the configured deadlines and retry
    /// policy.
    fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ServiceError> {
        let mut attempt = 0u32;
        loop {
            let outcome = http::call_with(
                self.addr,
                method,
                path,
                body,
                self.config.connect_timeout,
                self.config.io_timeout,
            )
            .and_then(|(status, reply)| {
                if status >= 500 || status == 429 {
                    Err(ServiceError::Http { status, msg: reply })
                } else {
                    Ok((status, reply))
                }
            });
            match outcome {
                Ok(ok) => return Ok(ok),
                Err(e) if attempt < self.config.retries && e.is_retryable() => {
                    attempt += 1;
                    std::thread::sleep(self.config.backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn get<T: Deserialize>(&self, path: &str) -> Result<T, ServiceError> {
        let (status, body) = self.call("GET", path, None)?;
        decode(status, &body)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Health, ServiceError> {
        self.get("/healthz")
    }

    /// `GET /stats`.
    pub fn stats(&self) -> Result<StatsReply, ServiceError> {
        self.get("/stats")
    }

    /// `GET /metrics`: the raw Prometheus text exposition body (the one
    /// endpoint that is not JSON).
    pub fn metrics(&self) -> Result<String, ServiceError> {
        let (status, body) = self.call("GET", "/metrics", None)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }

    /// [`Client::metrics`] parsed into families and samples
    /// ([`bd_telemetry::prom::parse`]) — what the load generator's gate
    /// and the smoke tests read instead of grepping exposition text.
    pub fn metrics_parsed(&self) -> Result<bd_telemetry::prom::Exposition, ServiceError> {
        let body = self.metrics()?;
        bd_telemetry::prom::parse(&body)
            .map_err(|e| ServiceError::Protocol(format!("parse /metrics exposition: {e}")))
    }

    /// `GET /audit`: chain-verify the daemon's journal. Both the verified
    /// (`200`) and the tampered (`409`) answer decode to an [`AuditReply`]
    /// — a broken chain is an *answer*, not a transport failure.
    pub fn audit(&self) -> Result<AuditReply, ServiceError> {
        let (status, body) = self.call("GET", "/audit", None)?;
        if status == 200 || status == 409 {
            serde_json::from_str(&body)
                .map_err(|e| ServiceError::Protocol(format!("decode audit reply {body:?}: {e}")))
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }

    /// `POST /batches`: submit `request`, returning the accepted handle.
    /// Safe under retry: a duplicate submission re-plans against the
    /// store and replays by digest.
    ///
    /// A request whose `request_id` is empty is stamped with the
    /// deterministic content-derived id
    /// ([`BatchRequest::computed_request_id`]) before it goes on the wire,
    /// so every submission through this client is traceable end to end; an
    /// explicit caller-chosen id is passed through untouched.
    pub fn submit(&self, request: &BatchRequest) -> Result<BatchAccepted, ServiceError> {
        let stamped;
        let request = if request.request_id.is_empty() {
            match request.computed_request_id() {
                Some(id) => {
                    stamped = BatchRequest {
                        request_id: id,
                        ..request.clone()
                    };
                    &stamped
                }
                // An unmaterializable graph source: send as-is — the
                // daemon will fail the batch with the real error and
                // derive a body-hash id for the failure's trace.
                None => request,
            }
        } else {
            request
        };
        let body = serde_json::to_string(request)
            .map_err(|e| ServiceError::Protocol(format!("encode batch request: {e}")))?;
        let (status, reply) = self.call("POST", "/batches", Some(&body))?;
        decode(status, &reply)
    }

    /// `POST /batches` with an arbitrary raw body — the malformed-input
    /// path tests exercise.
    pub fn submit_raw(&self, body: &str) -> Result<BatchAccepted, ServiceError> {
        let (status, reply) = self.call("POST", "/batches", Some(body))?;
        decode(status, &reply)
    }

    /// `GET /batches/:id`.
    pub fn batch(&self, id: u64) -> Result<BatchReply, ServiceError> {
        self.get(&format!("/batches/{id}"))
    }

    /// Poll `GET /batches/:id` until the batch leaves the queue (done or
    /// failed), or `timeout` elapses.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<BatchReply, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            let reply = self.batch(id)?;
            match reply.status.as_str() {
                "done" | "failed" => return Ok(reply),
                _ if Instant::now() >= deadline => {
                    return Err(ServiceError::Protocol(format!(
                        "batch {id} still {} after {timeout:?}",
                        reply.status
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// `POST /shutdown`: ask the daemon to stop accepting and drain.
    /// Never retried — after a success whose response was lost, the
    /// daemon is gone and a retry would report a spurious failure.
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        let (status, body) = http::call_with(
            self.addr,
            "POST",
            "/shutdown",
            Some(""),
            self.config.connect_timeout,
            self.config.io_timeout,
        )?;
        if status == 200 {
            Ok(())
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }
}

fn decode<T: Deserialize>(status: u16, body: &str) -> Result<T, ServiceError> {
    if !(200..300).contains(&status) {
        return Err(ServiceError::Http {
            status,
            msg: body.to_string(),
        });
    }
    serde_json::from_str(body)
        .map_err(|e| ServiceError::Protocol(format!("decode response {body:?}: {e}")))
}
