//! A tiny blocking client for the daemon's JSON API — the test suites'
//! and examples' way of speaking to `bd-serve` without hand-writing HTTP.

use crate::error::ServiceError;
use crate::http;
use crate::protocol::{AuditReply, BatchAccepted, BatchReply, BatchRequest, Health, StatsReply};
use serde::Deserialize;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A handle on one daemon address. Connections are per-call
/// (`Connection: close`), so the client is freely cloneable and `Sync`.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr }
    }

    fn get<T: Deserialize>(&self, path: &str) -> Result<T, ServiceError> {
        let (status, body) = http::call(self.addr, "GET", path, None)?;
        decode(status, &body)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Health, ServiceError> {
        self.get("/healthz")
    }

    /// `GET /stats`.
    pub fn stats(&self) -> Result<StatsReply, ServiceError> {
        self.get("/stats")
    }

    /// `GET /metrics`: the raw Prometheus text exposition body (the one
    /// endpoint that is not JSON).
    pub fn metrics(&self) -> Result<String, ServiceError> {
        let (status, body) = http::call(self.addr, "GET", "/metrics", None)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }

    /// `GET /audit`: chain-verify the daemon's journal. Both the verified
    /// (`200`) and the tampered (`409`) answer decode to an [`AuditReply`]
    /// — a broken chain is an *answer*, not a transport failure.
    pub fn audit(&self) -> Result<AuditReply, ServiceError> {
        let (status, body) = http::call(self.addr, "GET", "/audit", None)?;
        if status == 200 || status == 409 {
            serde_json::from_str(&body)
                .map_err(|e| ServiceError::Protocol(format!("decode audit reply {body:?}: {e}")))
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }

    /// `POST /batches`: submit `request`, returning the accepted handle.
    pub fn submit(&self, request: &BatchRequest) -> Result<BatchAccepted, ServiceError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ServiceError::Protocol(format!("encode batch request: {e}")))?;
        let (status, reply) = http::call(self.addr, "POST", "/batches", Some(&body))?;
        decode(status, &reply)
    }

    /// `POST /batches` with an arbitrary raw body — the malformed-input
    /// path tests exercise.
    pub fn submit_raw(&self, body: &str) -> Result<BatchAccepted, ServiceError> {
        let (status, reply) = http::call(self.addr, "POST", "/batches", Some(body))?;
        decode(status, &reply)
    }

    /// `GET /batches/:id`.
    pub fn batch(&self, id: u64) -> Result<BatchReply, ServiceError> {
        self.get(&format!("/batches/{id}"))
    }

    /// Poll `GET /batches/:id` until the batch leaves the queue (done or
    /// failed), or `timeout` elapses.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<BatchReply, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            let reply = self.batch(id)?;
            match reply.status.as_str() {
                "done" | "failed" => return Ok(reply),
                _ if Instant::now() >= deadline => {
                    return Err(ServiceError::Protocol(format!(
                        "batch {id} still {} after {timeout:?}",
                        reply.status
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// `POST /shutdown`: ask the daemon to stop accepting and drain.
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        let (status, body) = http::call(self.addr, "POST", "/shutdown", Some(""))?;
        if status == 200 {
            Ok(())
        } else {
            Err(ServiceError::Http { status, msg: body })
        }
    }
}

fn decode<T: Deserialize>(status: u16, body: &str) -> Result<T, ServiceError> {
    if !(200..300).contains(&status) {
        return Err(ServiceError::Http {
            status,
            msg: body.to_string(),
        });
    }
    serde_json::from_str(body)
        .map_err(|e| ServiceError::Protocol(format!("decode response {body:?}: {e}")))
}
