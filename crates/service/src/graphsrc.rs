//! Serializable graph sources: how a client tells the daemon *which graph*
//! a batch runs on without shipping megabytes of adjacency for the common
//! families.
//!
//! [`GraphSource::BenchEr`] names the benchmark family by coordinate and
//! materializes through `bd_graphs::generators::asymmetric_gnp` — the same
//! pure function `bd-bench`'s sweeps use — so a daemon submission and a
//! local `table1 --store` run of the same cell hash to the same
//! [`bd_dispersion::SpecDigest`] and share cache entries.

use crate::error::ServiceError;
use bd_graphs::generators::{asymmetric_gnp, grid, ring};
use bd_graphs::PortGraph;
use serde::{Deserialize, Serialize};

/// A recipe for one graph. Serde-able; the canonical JSON rendering is the
/// daemon's graph-cache key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphSource {
    /// The benchmark family: view-asymmetric seeded `G(n, p)` at the
    /// bench density (`asymmetric_gnp`).
    BenchEr {
        /// Node count.
        n: usize,
        /// Family seed.
        seed: u64,
    },
    /// A ring on `n` nodes (the `RingOptimal` row's home).
    Ring {
        /// Node count.
        n: usize,
    },
    /// A `rows × cols` grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Explicit port-labeled adjacency `adj[v][p] = (u, q)` for graphs no
    /// family covers.
    Explicit {
        /// Full adjacency.
        adj: Vec<Vec<(usize, usize)>>,
    },
}

impl GraphSource {
    /// Build the graph this source describes.
    pub fn materialize(&self) -> Result<PortGraph, ServiceError> {
        let g = match self {
            GraphSource::BenchEr { n, seed } => asymmetric_gnp(*n, *seed)?,
            GraphSource::Ring { n } => ring(*n)?,
            GraphSource::Grid { rows, cols } => grid(*rows, *cols)?,
            GraphSource::Explicit { adj } => PortGraph::from_adjacency(adj.clone())?,
        };
        Ok(g)
    }

    /// The daemon's graph-cache key: the canonical JSON rendering (field
    /// order is fixed by the typed serializer, so equal sources produce
    /// equal keys).
    pub fn cache_key(&self) -> String {
        serde_json::to_string(self).expect("graph sources always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_er_matches_the_generator() {
        let src = GraphSource::BenchEr { n: 12, seed: 1000 };
        let g = src.materialize().unwrap();
        assert_eq!(g, asymmetric_gnp(12, 1000).unwrap());
    }

    #[test]
    fn sources_serde_round_trip() {
        for src in [
            GraphSource::BenchEr { n: 9, seed: 3 },
            GraphSource::Ring { n: 8 },
            GraphSource::Grid { rows: 3, cols: 4 },
            GraphSource::Explicit {
                adj: ring(4).unwrap().adjacency().to_vec(),
            },
        ] {
            let json = serde_json::to_string(&src).unwrap();
            let back: GraphSource = serde_json::from_str(&json).unwrap();
            assert_eq!(back, src);
            assert_eq!(back.cache_key(), src.cache_key());
            assert_eq!(
                back.materialize().unwrap(),
                src.materialize().unwrap(),
                "{json}"
            );
        }
    }
}
