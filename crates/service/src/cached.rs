//! The cache-aware batch layer: [`CachedPlanner`] partitions a submission
//! into stored and to-run cells, executes only the misses through
//! `bd_dispersion::BatchPlanner` (cost-ordered, multi-graph), writes the
//! fresh outcomes back, and returns everything in insertion order.
//!
//! Digests are computed at the **default engine configuration** — the one
//! the planner actually executes under (the session derives the per-run
//! round cap from the spec itself, so it is not identity material).

use crate::error::ServiceError;
use crate::store::ResultStore;
use bd_dispersion::canon::{scenario_digest, SpecDigest};
use bd_dispersion::runner::{Outcome, ScenarioSpec};
use bd_dispersion::{BatchPlanner, DispersionError};
use bd_graphs::PortGraph;
use bd_runtime::EngineConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What one [`CachedPlanner::run`] (or one daemon batch) did, in numbers.
/// The acceptance observable for "a repeated submission is served entirely
/// from the store" is `misses == 0 && rounds_simulated == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Cells answered from the store.
    pub hits: u64,
    /// Cells that had to be simulated.
    pub misses: u64,
    /// Cells that errored (bad scenarios; never stored).
    pub errors: u64,
    /// Cells that duplicated an earlier cell of the *same batch* (by
    /// digest) and were aliased to its result instead of simulating twice.
    /// `hits + misses + errors + deduped` always equals the cell count.
    pub deduped: u64,
    /// Engine-stepped rounds across the simulated cells
    /// (`rounds − rounds_skipped`, the same accounting the fast-forward
    /// metrics use). Zero when everything came from the store.
    pub rounds_simulated: u64,
    /// Measured rounds the store answered without simulating — the
    /// `rounds_skipped`-style counter of the serving layer.
    pub rounds_saved: u64,
    /// Wall-clock spent simulating, microseconds (sum of per-run
    /// `RunMetrics::elapsed_micros`).
    pub elapsed_simulated_micros: u64,
    /// Wall-clock of the whole simulate stage, microseconds: one
    /// measurement around the inner `BatchPlanner::run` fan-out (unlike
    /// [`CacheStats::elapsed_simulated_micros`], which sums per-cell and
    /// can exceed wall time under a parallel pool). Feeds the daemon's
    /// `bd_request_duration_micros{stage="simulate"}` histogram.
    pub simulate_wall_micros: u64,
    /// Wall-clock spent writing fresh outcomes back to the store,
    /// microseconds. Feeds `bd_request_duration_micros{stage="store_write"}`.
    pub store_write_micros: u64,
}

impl CacheStats {
    /// Fold another report into this one (the daemon's global `/stats`).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.errors += other.errors;
        self.deduped += other.deduped;
        self.rounds_simulated += other.rounds_simulated;
        self.rounds_saved += other.rounds_saved;
        self.elapsed_simulated_micros += other.elapsed_simulated_micros;
        self.simulate_wall_micros += other.simulate_wall_micros;
        self.store_write_micros += other.store_write_micros;
    }
}

enum Slot {
    /// Served from the store at `add` time.
    Hit(Box<Outcome>),
    /// Queued on the inner planner at this index; written back after the
    /// run under this digest.
    Queued {
        planner_idx: usize,
        digest: SpecDigest,
        spec: ScenarioSpec,
    },
    /// Same digest as the earlier cell at this slot index: simulating it
    /// again would produce (and pay for) the identical outcome, so the
    /// cell aliases that result instead.
    Alias(usize),
}

/// A [`BatchPlanner`] wrapper that consults a [`ResultStore`] per cell.
///
/// ```no_run
/// use bd_dispersion::runner::{Algorithm, ScenarioSpec};
/// use bd_service::{CachedPlanner, ResultStore};
/// use std::sync::Arc;
///
/// let store = ResultStore::open("/tmp/bd-store").unwrap();
/// let graph = Arc::new(bd_graphs::generators::asymmetric_gnp(9, 1000).unwrap());
/// let mut planner = CachedPlanner::new(&store);
/// planner.add(&graph, ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0));
/// let (results, stats) = planner.run().unwrap();
/// assert_eq!(results.len(), 1);
/// assert_eq!(stats.hits + stats.misses, 1);
/// ```
pub struct CachedPlanner<'s> {
    store: &'s ResultStore,
    planner: BatchPlanner,
    slots: Vec<Slot>,
    /// Digest → slot index of the first cell queued under it, for
    /// in-flight dedup of identical cells within one batch.
    queued: std::collections::HashMap<SpecDigest, usize>,
    /// The last graph's precomputed canonical bytes, keyed by `Arc`
    /// pointer: serializing the adjacency is the dominant digest cost, so
    /// consecutive cells on one graph (the normal batch shape) pay it
    /// once. A different `Arc` to equal content just recomputes.
    graph_canon: Option<(usize, bd_dispersion::canon::GraphCanon)>,
}

/// Where one queued cell's result comes from (see
/// [`CachedPlanner::source`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Answered from the store at `add` time.
    Store,
    /// Will be simulated by [`CachedPlanner::run`].
    Simulation,
    /// Duplicates an earlier cell of this batch and aliases its result.
    Dedup,
}

impl std::fmt::Debug for CachedPlanner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedPlanner")
            .field("cells", &self.slots.len())
            .field("queued", &self.planner.len())
            .finish()
    }
}

impl<'s> CachedPlanner<'s> {
    /// A planner writing through `store`.
    pub fn new(store: &'s ResultStore) -> Self {
        CachedPlanner {
            store,
            planner: BatchPlanner::new(),
            slots: Vec::new(),
            queued: std::collections::HashMap::new(),
            graph_canon: None,
        }
    }

    /// The digest a cell is keyed under (graph + spec + the default engine
    /// knobs the planner executes with).
    pub fn digest(graph: &PortGraph, spec: &ScenarioSpec) -> SpecDigest {
        scenario_digest(graph, spec, &EngineConfig::default())
    }

    /// [`Self::digest`] through the memoized per-graph canonical bytes.
    fn digest_memoized(&mut self, graph: &Arc<PortGraph>, spec: &ScenarioSpec) -> SpecDigest {
        let key = Arc::as_ptr(graph) as usize;
        if self.graph_canon.as_ref().map(|(k, _)| *k) != Some(key) {
            self.graph_canon = Some((key, bd_dispersion::canon::GraphCanon::new(graph)));
        }
        let (_, canon) = self.graph_canon.as_ref().expect("memoized above");
        bd_dispersion::canon::scenario_digest_with(canon, spec, &EngineConfig::default())
    }

    /// Queue `spec` against `graph`; a stored outcome is claimed
    /// immediately, a digest already queued *in this batch* aliases that
    /// cell (in-flight dedup — identical retries cost one simulation, not
    /// two), and anything else goes to the inner [`BatchPlanner`].
    /// Returns the cell's index in [`CachedPlanner::run`]'s result order.
    pub fn add(&mut self, graph: &Arc<PortGraph>, spec: ScenarioSpec) -> usize {
        let digest = self.digest_memoized(graph, &spec);
        let slot = if let Some(&first) = self.queued.get(&digest) {
            Slot::Alias(first)
        } else {
            match self.store.get(&digest) {
                Some(outcome) => Slot::Hit(Box::new(outcome)),
                None => {
                    self.queued.insert(digest, self.slots.len());
                    Slot::Queued {
                        planner_idx: self.planner.add(graph, spec.clone()),
                        digest,
                        spec,
                    }
                }
            }
        };
        self.slots.push(slot);
        self.slots.len() - 1
    }

    /// Queued cell count (hits + misses so far).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cells that will actually simulate when [`CachedPlanner::run`] is
    /// called.
    pub fn pending_misses(&self) -> usize {
        self.planner.len()
    }

    /// Attach an extra argument to the inner planner's batch span — the
    /// daemon tags each run with the request id so span exports show
    /// per-request lifelines. See [`BatchPlanner::tag`].
    pub fn tag(&mut self, key: &'static str, value: String) {
        self.planner.tag(key, value);
    }

    /// Where cell `idx` (an index returned by [`CachedPlanner::add`]) gets
    /// its result from. The daemon reports this per cell.
    pub fn source(&self, idx: usize) -> CellSource {
        match self.slots[idx] {
            Slot::Hit(_) => CellSource::Store,
            Slot::Queued { .. } => CellSource::Simulation,
            Slot::Alias(_) => CellSource::Dedup,
        }
    }

    /// Execute the misses (cost-ordered over the pool, exactly like a bare
    /// [`BatchPlanner`]), persist their outcomes, and return every cell in
    /// insertion order together with the batch's [`CacheStats`].
    ///
    /// The only error surfaced at this level is a store-write failure;
    /// per-cell scenario errors stay inside the result vector, matching
    /// `BatchPlanner::run`.
    pub fn run(self) -> Result<(Vec<Result<Outcome, DispersionError>>, CacheStats), ServiceError> {
        let simulate_started = std::time::Instant::now();
        let mut executed: Vec<Option<Result<Outcome, DispersionError>>> =
            self.planner.run().into_iter().map(Some).collect();
        let mut stats = CacheStats {
            simulate_wall_micros: simulate_started.elapsed().as_micros() as u64,
            ..CacheStats::default()
        };
        // Aliases resolve after their targets, so fill slots in two passes.
        let mut results: Vec<Option<Result<Outcome, DispersionError>>> =
            (0..self.slots.len()).map(|_| None).collect();
        let mut aliases: Vec<(usize, usize)> = Vec::new();
        for (idx, slot) in self.slots.into_iter().enumerate() {
            match slot {
                Slot::Hit(outcome) => {
                    stats.hits += 1;
                    stats.rounds_saved += outcome.rounds;
                    results[idx] = Some(Ok(*outcome));
                }
                Slot::Queued {
                    planner_idx,
                    digest,
                    spec,
                } => {
                    let result = executed[planner_idx]
                        .take()
                        .expect("one slot per planner cell");
                    match &result {
                        Ok(outcome) => {
                            stats.misses += 1;
                            stats.rounds_simulated +=
                                outcome.metrics.rounds - outcome.metrics.rounds_skipped;
                            stats.elapsed_simulated_micros += outcome.metrics.elapsed_micros;
                            let write_started = std::time::Instant::now();
                            self.store.put(digest, &spec, outcome)?;
                            stats.store_write_micros += write_started.elapsed().as_micros() as u64;
                        }
                        Err(_) => stats.errors += 1,
                    }
                    results[idx] = Some(result);
                }
                Slot::Alias(first) => aliases.push((idx, first)),
            }
        }
        for (idx, first) in aliases {
            stats.deduped += 1;
            results[idx] = Some(
                results[first]
                    .as_ref()
                    .expect("alias target precedes alias")
                    .clone(),
            );
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect();
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_dispersion::adversaries::AdversaryKind;
    use bd_dispersion::runner::Algorithm;
    use bd_graphs::generators::asymmetric_gnp;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bd-service-cached-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_batch_is_served_entirely_from_the_store() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let graph = Arc::new(asymmetric_gnp(9, 1000).unwrap());
        let specs: Vec<ScenarioSpec> = (0..3)
            .map(|seed| {
                ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0)
                    .with_byzantine(1, AdversaryKind::Squatter)
                    .with_seed(seed)
            })
            .collect();

        let mut cold = CachedPlanner::new(&store);
        for spec in &specs {
            cold.add(&graph, spec.clone());
        }
        assert_eq!(cold.pending_misses(), 3);
        let (first, s1) = cold.run().unwrap();
        assert_eq!((s1.hits, s1.misses), (0, 3));
        assert!(s1.rounds_simulated > 0);

        let mut warm = CachedPlanner::new(&store);
        for spec in &specs {
            warm.add(&graph, spec.clone());
        }
        assert_eq!(warm.pending_misses(), 0, "everything already stored");
        let (second, s2) = warm.run().unwrap();
        assert_eq!((s2.hits, s2.misses), (3, 0));
        assert_eq!(s2.rounds_simulated, 0, "zero rounds simulated on replay");
        assert!(s2.rounds_saved > 0);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap(), "exact replay");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_cells_in_one_batch_simulate_once() {
        let dir = tmpdir("dedup");
        let store = ResultStore::open(&dir).unwrap();
        let graph = Arc::new(asymmetric_gnp(9, 1000).unwrap());
        let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0)
            .with_byzantine(1, AdversaryKind::Squatter)
            .with_seed(3);
        let mut planner = CachedPlanner::new(&store);
        planner.add(&graph, spec.clone());
        planner.add(&graph, spec.clone());
        planner.add(&graph, spec.clone().with_seed(4)); // distinct cell
        planner.add(&graph, spec.clone());
        assert_eq!(
            planner.pending_misses(),
            2,
            "duplicates alias the first cell instead of queueing"
        );
        let (results, stats) = planner.run().unwrap();
        assert_eq!((stats.misses, stats.deduped), (2, 2));
        assert_eq!(stats.hits + stats.misses + stats.errors + stats.deduped, 4);
        assert_eq!(
            results[0].as_ref().unwrap(),
            results[1].as_ref().unwrap(),
            "aliased cell returns the identical outcome"
        );
        assert_eq!(results[0].as_ref().unwrap(), results[3].as_ref().unwrap());
        assert_ne!(
            results[0].as_ref().unwrap().final_positions,
            results[2].as_ref().unwrap().final_positions
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_not_stored() {
        let dir = tmpdir("errors");
        let store = ResultStore::open(&dir).unwrap();
        let graph = Arc::new(asymmetric_gnp(9, 1000).unwrap());
        let bad = ScenarioSpec::gathered(Algorithm::Baseline, &graph, 0).with_robots(0);
        let mut planner = CachedPlanner::new(&store);
        planner.add(&graph, bad.clone());
        let (results, stats) = planner.run().unwrap();
        assert!(results[0].is_err());
        assert_eq!(stats.errors, 1);
        assert!(store.is_empty(), "failed cells never enter the journal");
        // And they stay misses on resubmission.
        let mut again = CachedPlanner::new(&store);
        again.add(&graph, bad);
        assert_eq!(again.pending_misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
