//! `bd-serve` — the scenario-serving daemon.
//!
//! ```text
//! bd-serve --store DIR [--addr 127.0.0.1:7171] [--workers N] [--queue-depth N] \
//!          [--anchor FILE] [--chaos-plan FILE] \
//!          [--log FILE|stderr] [--log-level LVL] [--trace-out FILE]
//! ```
//!
//! Binds, prints one `listening on <addr>` line (port `0` in `--addr`
//! resolves to an ephemeral port — scripts scrape this line), and serves
//! until `POST /shutdown`. See the `bd-service` crate docs for the API.
//!
//! `--anchor FILE` keeps the result journal's chain tip in a separate
//! file, rewritten after every append: on startup and on every `/audit`
//! the journal's recomputed tip must match it, which catches the one
//! tampering mode the hash chain alone cannot — truncating the tail
//! exactly at a line boundary. Point it at storage the journal's own
//! adversary cannot write.
//!
//! `--chaos-plan FILE` loads a JSON `bd_chaos::FaultPlan` and arms
//! deterministic fault injection in the store's write path and the worker
//! loop — the crash-recovery drill's knob (RESILIENCE.md). Never use it
//! on a store you care about: it exists to tear writes on purpose.
//!
//! `--log FILE|stderr` turns on structured JSONL logging
//! (`bd_telemetry::log`): one event per line, each carrying the request's
//! trace id under `req`. `--log-level debug|info|warn|error` sets the
//! minimum recorded severity (default `info`). Without `--log` the logging
//! path stays at its disabled-is-free cost.
//!
//! `--trace-out FILE` enables span recording for the whole process and, at
//! shutdown, drains the span buffer into `FILE` as Chrome trace-event
//! JSONL (open in Perfetto after `jq -s .`). Each batch runs under a
//! `request` span tagged with its trace id, so a busy daemon's trace
//! separates into per-request lifelines.

use bd_chaos::{Chaos, FaultPlan};
use bd_service::{Daemon, ServeConfig};
use bd_telemetry::log as tlog;

fn usage() -> ! {
    eprintln!(
        "usage: bd-serve --store DIR [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--anchor FILE] [--chaos-plan FILE] [--log FILE|stderr] [--log-level LVL] \
         [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::ephemeral("");
    let mut store_dir = None;
    let mut log_sink = None;
    let mut log_level = tlog::Level::Info;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--store" => store_dir = Some(value("--store")),
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--anchor" => config.anchor = Some(value("--anchor").into()),
            "--chaos-plan" => {
                let path = value("--chaos-plan");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("bd-serve: read chaos plan {path}: {e}");
                    std::process::exit(2);
                });
                let plan: FaultPlan = serde_json::from_str(&text).unwrap_or_else(|e| {
                    eprintln!("bd-serve: parse chaos plan {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!("bd-serve: fault injection armed: {plan:?}");
                config.chaos = Chaos::from_plan(plan);
            }
            "--log" => log_sink = Some(value("--log")),
            "--log-level" => {
                let lvl = value("--log-level");
                log_level = tlog::Level::parse(&lvl).unwrap_or_else(|| {
                    eprintln!("bd-serve: unknown log level {lvl:?}");
                    usage()
                });
            }
            "--trace-out" => trace_out = Some(value("--trace-out")),
            _ => usage(),
        }
    }
    let Some(store_dir) = store_dir else { usage() };
    config.store_dir = store_dir.into();

    match log_sink.as_deref() {
        Some("stderr") => tlog::init_stderr(log_level),
        Some(path) => {
            if let Err(e) = tlog::init_file(std::path::Path::new(path), log_level) {
                eprintln!("bd-serve: open log file {path}: {e}");
                std::process::exit(2);
            }
        }
        None => {}
    }
    if trace_out.is_some() {
        bd_telemetry::enable_spans(true);
    }

    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bd-serve: {e}");
            std::process::exit(1);
        }
    };
    // The contract with wrappers (CI smoke, tests): exactly one line on
    // stdout announcing the resolved address, then serve until shutdown.
    println!("listening on {}", daemon.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    daemon.join();
    if let Some(path) = trace_out {
        let events = bd_telemetry::spans::drain();
        match std::fs::File::create(&path) {
            Ok(file) => {
                let mut out = std::io::BufWriter::new(file);
                if let Err(e) = bd_telemetry::spans::write_chrome_trace(&mut out, &events) {
                    eprintln!("bd-serve: write trace {path}: {e}");
                } else {
                    eprintln!("bd-serve: wrote {} span events to {path}", events.len());
                }
            }
            Err(e) => eprintln!("bd-serve: create trace file {path}: {e}"),
        }
    }
    tlog::shutdown();
    println!("bd-serve: drained and stopped");
}
