//! The content-addressed, tamper-evident result store.
//!
//! One directory, one append-only `results.jsonl`: each line is a complete
//! JSON object `{"body":{...},"chain":"<32 hex>"}`. The body carries the
//! scenario's [`SpecDigest`] key (see `bd_dispersion::canon`), the spec and
//! outcome, the [`EnvContract`] of the writing process, and `prev` — the
//! chain digest of the previous line (`GENESIS_TIP`, 32 zeros, for the
//! first). `chain` commits to the body's exact bytes under a domain
//! separator, so every entry transitively commits to the entire journal
//! before it. The store keeps a full in-memory index — a lookup never
//! touches the disk — and appends synchronously on `put`, so a process
//! crash can lose at most the entry being written.
//!
//! **What the chain proves** (and what it does not): any in-place edit,
//! record reordering, or truncate-then-append splice breaks a link and is
//! reported with the 1-based index of the first bad entry — by
//! [`ResultStore::open`] (which verifies while replaying) and by
//! [`ResultStore::verify_chain`] (the `/audit` re-read). It is a hash
//! chain, not a MAC: an adversary with write access who rewrites every
//! subsequent line is undetectable, as is truncating the tail exactly at a
//! line boundary. The chain defends provenance against accidents and
//! casual edits; byzantine storage needs an externally anchored tip.
//! [`ResultStore::open_anchored`] provides exactly that: the current tip
//! is persisted to a separate **anchor file** after every append (write
//! temp + rename, so the anchor is never torn), and both `open_anchored`
//! and [`ResultStore::verify_chain`] compare the journal's recomputed tip
//! against the anchored one — a tail truncated exactly at a line boundary
//! verifies as a chain but no longer matches the anchor, and is reported
//! as [`ServiceError::AnchorMismatch`]. Keep the anchor on storage the
//! journal's adversary cannot reach (different volume, different
//! permissions) or the two fail together. VERIFICATION.md covers the full
//! trust argument.
//!
//! **Crash tolerance:** a damaged *final* line that does not decode is the
//! signature of a crash mid-append; `open` drops it and truncates the file
//! to the last good entry, so the next append continues a clean journal.
//! Damage anywhere *before* the tail means something other than a crash
//! happened to the file, and the store refuses to open rather than
//! silently serve half a journal: undecodable interior lines are
//! [`ServiceError::Corrupt`], decodable-but-chain-invalid lines anywhere
//! (tail included — a *complete* wrong line is not a crash signature) are
//! [`ServiceError::Tampered`].

use crate::error::ServiceError;
use bd_dispersion::canon::SpecDigest;
use bd_dispersion::runner::{Outcome, ScenarioSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the journal inside the store directory.
pub const JOURNAL: &str = "results.jsonl";

/// Chain link of the empty journal: 32 zeros (no real digest, which is a
/// pair of FNV streams over a domain-tagged body, can collide with it).
pub const GENESIS_TIP: &str = "00000000000000000000000000000000";

/// Domain separator prefixed to every body before digesting, versioning
/// the chain format itself: a digest computed under a different rule can
/// never verify here by accident.
const CHAIN_DOMAIN: &[u8] = b"bdsc1";

/// Entry layout constants used to recover the body's exact bytes from a
/// journal line without trusting serializer round-trips: every line is
/// `{"body":<body json>,"chain":"<32 hex>"}`.
const LINE_HEAD: &str = "{\"body\":";
const LINE_TAIL: &str = ",\"chain\":\"";
/// `,"chain":"` + 32 hex digits + `"}`.
const TAIL_LEN: usize = LINE_TAIL.len() + 32 + 2;

/// The environment a journal entry was produced under. Committed into the
/// chain, so an audit can tell which code wrote which results — a stored
/// outcome is only as trustworthy as the engine build that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvContract {
    /// Crate version of the writing process.
    pub code_version: String,
    /// The simulation engine the outcome came from.
    pub engine: String,
    /// Journal format tag; bumped on any layout change.
    pub format: String,
}

impl EnvContract {
    /// The contract of this build.
    pub fn current() -> EnvContract {
        EnvContract {
            code_version: env!("CARGO_PKG_VERSION").into(),
            engine: "bd-runtime".into(),
            format: "bdsc1".into(),
        }
    }
}

/// The chained payload of one journal line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EntryBody {
    /// 32-hex-digit [`SpecDigest`] rendering (the lookup key).
    digest: String,
    /// The spec that produced the outcome (for humans and audits; lookups
    /// go by digest alone).
    spec: ScenarioSpec,
    /// The stored result, replayed verbatim on a hit.
    outcome: Outcome,
    /// Environment the entry was written under.
    env: EnvContract,
    /// Chain digest of the previous line; [`GENESIS_TIP`] for the first.
    prev: String,
}

/// One journal line: the body plus the digest committing to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    body: EntryBody,
    /// `SpecDigest` of `CHAIN_DOMAIN ++ <body json bytes>`.
    chain: String,
}

/// Read the tip recorded in an anchor file; `None` when the file is
/// missing or empty (a fresh anchor, initialized at open).
fn read_anchor(path: &Path) -> Result<Option<String>, ServiceError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let tip = text.trim().to_string();
            Ok(if tip.is_empty() { None } else { Some(tip) })
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Persist `tip` to the anchor file via write-temp-then-rename, so a
/// crash mid-write can never leave a torn anchor behind.
fn write_anchor(path: &Path, tip: &str) -> Result<(), ServiceError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{tip}\n"))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The chain digest of a body's exact serialized bytes.
fn chain_digest(body_json: &str) -> String {
    let mut bytes = Vec::with_capacity(CHAIN_DOMAIN.len() + body_json.len());
    bytes.extend_from_slice(CHAIN_DOMAIN);
    bytes.extend_from_slice(body_json.as_bytes());
    SpecDigest::of_bytes(&bytes).to_string()
}

/// How one journal line fared under verification against the running tip.
enum LineVerdict {
    /// Decodes, layout intact, chain digest correct, links to the tip.
    Good(Box<Entry>),
    /// Does not decode as an entry at all — a crash signature when (and
    /// only when) it is the final line.
    Undecodable(String),
    /// Decodes but fails the chain: wrong layout, wrong digest, or a
    /// broken `prev` link. Never a crash signature.
    ChainViolation(String),
}

/// Verify one trimmed journal line against the expected `tip`.
fn verify_line(trimmed: &str, tip: &str) -> LineVerdict {
    let entry: Entry = match serde_json::from_str(trimmed) {
        Ok(e) => e,
        Err(e) => return LineVerdict::Undecodable(e.to_string()),
    };
    // Recover the body's exact bytes positionally: the chain value is
    // fixed-width hex at a fixed offset from the end, so no serializer
    // round-trip is involved in recomputing the digest.
    if trimmed.len() < LINE_HEAD.len() + TAIL_LEN
        || !trimmed.starts_with(LINE_HEAD)
        || !trimmed.ends_with("\"}")
        || !trimmed[trimmed.len() - TAIL_LEN..].starts_with(LINE_TAIL)
    {
        return LineVerdict::ChainViolation("entry layout is not the journal format".into());
    }
    let body_json = &trimmed[LINE_HEAD.len()..trimmed.len() - TAIL_LEN];
    let recomputed = chain_digest(body_json);
    if entry.chain != recomputed {
        return LineVerdict::ChainViolation(format!(
            "chain digest mismatch: recorded {}, recomputed {recomputed}",
            entry.chain
        ));
    }
    if entry.body.prev != tip {
        return LineVerdict::ChainViolation(format!(
            "broken link: prev {} but the preceding entry's digest is {tip}",
            entry.body.prev
        ));
    }
    LineVerdict::Good(Box::new(entry))
}

/// Counters a store accumulates over its lifetime (process-local; they
/// reset on reopen, unlike the journal). [`ResultStore::counters`] reads
/// them in one acquisition of the same lock `get`/`put` update them
/// under, so a snapshot is a single point in time — never a torn view
/// mixing fields from before and after a concurrent update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Lookups answered from the index.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries appended by this process.
    pub appended: u64,
    /// Journal lines dropped by truncated-tail recovery at open.
    pub recovered: u64,
}

/// What a successful [`ResultStore::verify_chain`] audit found.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainAudit {
    /// Entries whose chain verified.
    pub entries: usize,
    /// Chain digest of the final entry ([`GENESIS_TIP`] when empty) — the
    /// value to anchor externally if the storage itself is untrusted.
    pub tip: String,
}

struct Inner {
    index: HashMap<SpecDigest, Outcome>,
    file: File,
    /// Chain digest of the last journal line; the next `put` links to it.
    tip: String,
    /// Lifetime counters, kept under the one lock so `counters()` is a
    /// consistent snapshot (OBSERVABILITY.md, torn-read fix).
    hits: u64,
    misses: u64,
    appended: u64,
}

/// A content-addressed, append-only store of run [`Outcome`]s. Sync: the
/// daemon's worker pool shares one store across threads.
pub struct ResultStore {
    path: PathBuf,
    /// Out-of-band tip anchor; every append rewrites it and every audit
    /// checks against it. `None` falls back to chain-only verification.
    anchor: Option<PathBuf>,
    inner: Mutex<Inner>,
    recovered: u64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("entries", &self.len())
            .finish()
    }
}

impl ResultStore {
    /// Open (creating if needed) the store under `dir`, replaying the
    /// journal into the in-memory index. Every line is chain-verified as
    /// it loads; only an undecodable *final* line (a torn append) is
    /// recovered, by truncating to the last good entry.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResultStore, ServiceError> {
        ResultStore::open_inner(dir.as_ref(), None)
    }

    /// Open the store with its chain tip **anchored out-of-band** in
    /// `anchor` (any writable path, ideally on storage the journal's
    /// adversary cannot reach). A missing or empty anchor file is
    /// initialized from the journal's current tip; an existing one must
    /// match the tip recomputed from the journal, or the open fails with
    /// [`ServiceError::AnchorMismatch`] — this is what makes a tail
    /// truncated exactly at a line boundary (invisible to the chain
    /// itself) detectable across restarts. Every subsequent `put` rewrites
    /// the anchor atomically.
    pub fn open_anchored(
        dir: impl AsRef<Path>,
        anchor: impl Into<PathBuf>,
    ) -> Result<ResultStore, ServiceError> {
        ResultStore::open_inner(dir.as_ref(), Some(anchor.into()))
    }

    fn open_inner(dir: &Path, anchor: Option<PathBuf>) -> Result<ResultStore, ServiceError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;

        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut index = HashMap::new();
        let mut tip = GENESIS_TIP.to_string();
        let mut good_bytes = 0usize;
        let mut recovered = 0u64;
        let mut offset = 0usize;
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let start = offset;
            offset += line.len();
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                good_bytes = offset;
                continue;
            }
            match verify_line(trimmed, &tip) {
                LineVerdict::Good(entry) => {
                    let digest = SpecDigest::parse(&entry.body.digest).ok_or_else(|| {
                        ServiceError::Tampered {
                            path: path.clone(),
                            index: lineno + 1,
                            msg: format!("bad digest {:?}", entry.body.digest),
                        }
                    })?;
                    index.insert(digest, entry.body.outcome);
                    tip = entry.chain;
                    good_bytes = offset;
                }
                LineVerdict::Undecodable(msg) => {
                    // Only a damaged *tail* is recoverable: it must be the
                    // last line of the file.
                    if offset == text.len() {
                        recovered = 1;
                        good_bytes = start;
                        break;
                    }
                    return Err(ServiceError::Corrupt {
                        path,
                        line: lineno + 1,
                        msg,
                    });
                }
                LineVerdict::ChainViolation(msg) => {
                    return Err(ServiceError::Tampered {
                        path,
                        index: lineno + 1,
                        msg,
                    });
                }
            }
        }
        if good_bytes < text.len() {
            file.set_len(good_bytes as u64)?;
            file.seek(SeekFrom::End(0))?;
        }

        if let Some(anchor_path) = &anchor {
            match read_anchor(anchor_path)? {
                Some(anchored_tip) if anchored_tip != tip => {
                    return Err(ServiceError::AnchorMismatch {
                        path,
                        anchor: anchor_path.clone(),
                        journal_tip: tip,
                        anchored_tip,
                    });
                }
                Some(_) => {}
                None => write_anchor(anchor_path, &tip)?,
            }
        }

        Ok(ResultStore {
            path,
            anchor,
            inner: Mutex::new(Inner {
                index,
                file,
                tip,
                hits: 0,
                misses: 0,
                appended: 0,
            }),
            recovered,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the out-of-band tip anchor, when one is configured.
    pub fn anchor(&self) -> Option<&Path> {
        self.anchor.as_deref()
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// Whether the store holds no outcome.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current chain tip ([`GENESIS_TIP`] when empty).
    pub fn tip(&self) -> String {
        self.inner.lock().expect("store lock").tip.clone()
    }

    /// Lifetime counters (process-local), read in one lock acquisition —
    /// a point-in-time snapshot, never a torn view.
    pub fn counters(&self) -> StoreCounters {
        let inner = self.inner.lock().expect("store lock");
        StoreCounters {
            hits: inner.hits,
            misses: inner.misses,
            appended: inner.appended,
            recovered: self.recovered,
        }
    }

    /// The stored outcome for `digest`, counting a hit or a miss.
    pub fn get(&self, digest: &SpecDigest) -> Option<Outcome> {
        let mut inner = self.inner.lock().expect("store lock");
        match inner.index.get(digest) {
            Some(out) => {
                let out = out.clone();
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Persist `outcome` under `digest`, appending one chain-linked
    /// journal line and flushing it. Idempotent: re-putting an existing
    /// digest is a no-op (returns `false`) — first write wins, matching
    /// the append-only journal's replay semantics.
    pub fn put(
        &self,
        digest: SpecDigest,
        spec: &ScenarioSpec,
        outcome: &Outcome,
    ) -> Result<bool, ServiceError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&digest) {
            return Ok(false);
        }
        let body = EntryBody {
            digest: digest.to_string(),
            spec: spec.clone(),
            outcome: outcome.clone(),
            env: EnvContract::current(),
            prev: inner.tip.clone(),
        };
        let body_json = serde_json::to_string(&body)
            .map_err(|e| ServiceError::Protocol(format!("encode store entry: {e}")))?;
        let chain = chain_digest(&body_json);
        // Assembled positionally, exactly the layout `verify_line` slices.
        let line = format!("{LINE_HEAD}{body_json}{LINE_TAIL}{chain}\"}}\n");
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        inner.index.insert(digest, outcome.clone());
        inner.tip = chain;
        inner.appended += 1;
        // Anchor after the journal write, under the same lock: the anchor
        // always holds the tip of a journal state that exists on disk.
        if let Some(anchor_path) = &self.anchor {
            write_anchor(anchor_path, &inner.tip)?;
        }
        Ok(true)
    }

    /// Re-read the journal from disk and verify the whole chain — the
    /// `/audit` endpoint's workhorse. Holds the store lock, so no append
    /// can interleave with the read.
    ///
    /// Unlike `open`, the audit answers one question — "is the file on
    /// disk the file this store wrote?" — so *any* undecodable line,
    /// interior or final, fails it: while the lock is held no append is in
    /// flight, hence a torn tail cannot be ours. All failures report the
    /// 1-based index of the first bad entry. When the store is anchored,
    /// the recomputed tip must additionally match the anchored one — the
    /// check that catches a tail truncated exactly at a line boundary,
    /// which leaves a perfectly valid (shorter) chain behind.
    pub fn verify_chain(&self) -> Result<ChainAudit, ServiceError> {
        let _inner = self.inner.lock().expect("store lock");
        let text = std::fs::read_to_string(&self.path)?;
        let mut tip = GENESIS_TIP.to_string();
        let mut entries = 0usize;
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            match verify_line(trimmed, &tip) {
                LineVerdict::Good(entry) => {
                    tip = entry.chain;
                    entries += 1;
                }
                LineVerdict::Undecodable(msg) | LineVerdict::ChainViolation(msg) => {
                    return Err(ServiceError::Tampered {
                        path: self.path.clone(),
                        index: lineno + 1,
                        msg,
                    });
                }
            }
        }
        if let Some(anchor_path) = &self.anchor {
            if let Some(anchored_tip) = read_anchor(anchor_path)? {
                if anchored_tip != tip {
                    return Err(ServiceError::AnchorMismatch {
                        path: self.path.clone(),
                        anchor: anchor_path.clone(),
                        journal_tip: tip,
                        anchored_tip,
                    });
                }
            }
        }
        Ok(ChainAudit { entries, tip })
    }
}
