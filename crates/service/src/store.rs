//! The content-addressed, tamper-evident result store.
//!
//! One directory, one append-only `results.jsonl`: each line is a complete
//! JSON object `{"body":{...},"chain":"<32 hex>"}`. The body carries the
//! scenario's [`SpecDigest`] key (see `bd_dispersion::canon`), the spec and
//! outcome, the [`EnvContract`] of the writing process, and `prev` — the
//! chain digest of the previous line (`GENESIS_TIP`, 32 zeros, for the
//! first). `chain` commits to the body's exact bytes under a domain
//! separator, so every entry transitively commits to the entire journal
//! before it. The store keeps a full in-memory index — a lookup never
//! touches the disk — and appends synchronously on `put`, so a process
//! crash can lose at most the entry being written.
//!
//! **What the chain proves** (and what it does not): any in-place edit,
//! record reordering, or truncate-then-append splice breaks a link and is
//! reported with the 1-based index of the first bad entry — by
//! [`ResultStore::open`] (which verifies while replaying) and by
//! [`ResultStore::verify_chain`] (the `/audit` re-read). It is a hash
//! chain, not a MAC: an adversary with write access who rewrites every
//! subsequent line is undetectable, as is truncating the tail exactly at a
//! line boundary. The chain defends provenance against accidents and
//! casual edits; byzantine storage needs an externally anchored tip *and*
//! a record key:
//!
//! * **Anchoring** ([`ResultStore::open_anchored`]): the current tip is
//!   persisted to a separate **anchor file** after every append (write
//!   temp + rename, so the anchor is never torn), and both open and
//!   [`ResultStore::verify_chain`] compare the journal's recomputed tip
//!   against the anchored one — a tail truncated exactly at a line
//!   boundary verifies as a chain but no longer matches the anchor, and
//!   is reported as [`ServiceError::AnchorMismatch`]. Because `put`
//!   appends the journal line *before* rewriting the anchor, a crash
//!   between the two leaves the journal exactly **one entry ahead** of
//!   the anchor; both verifiers accept that single-entry window as
//!   crash-consistent (and re-anchor), while a journal *behind* its
//!   anchor — the truncation signature — always fails. Keep the anchor on
//!   storage the journal's adversary cannot reach, or the two fail
//!   together.
//! * **Keyed records** ([`StoreKey`], `BD_STORE_KEY`): with a key
//!   configured, every appended line additionally carries a `mac` — a
//!   domain-tagged (`bdsm1`) keyed digest over the body bytes — and
//!   verification **requires** a valid MAC on every record. A
//!   forged-but-chain-consistent splice (an adversary who recomputes the
//!   chain digests after rewriting history — the attack the bare chain
//!   cannot see, and the one that slips through the anchor's one-entry
//!   crash window) cannot produce MACs without the key and is rejected as
//!   [`ServiceError::Tampered`]. Journals written without a key stay
//!   readable by unkeyed stores; opening one *with* a key refuses, by
//!   design — keying starts with a fresh (or re-written) journal. The
//!   keyed digest is the same hand-rolled dual-FNV the chain uses: honest
//!   about its tier — it defeats adversaries without the key, not
//!   cryptanalysts; swap in an HMAC when the registry is reachable.
//!
//! **Crash tolerance:** a damaged *final* line that does not decode is the
//! signature of a crash mid-append; `open` drops it and truncates the file
//! to the last good entry, so the next append continues a clean journal.
//! Damage anywhere *before* the tail means something other than a crash
//! happened to the file, and the store refuses to open rather than
//! silently serve half a journal: undecodable interior lines are
//! [`ServiceError::Corrupt`], decodable-but-chain-invalid lines anywhere
//! (tail included — a *complete* wrong line is not a crash signature) are
//! [`ServiceError::Tampered`].
//!
//! **Fault injection:** the write path carries `bd-chaos` injection
//! points ([`StoreOptions::chaos`]) so the crash-recovery drill
//! (`bd-bench --bin chaos`, RESILIENCE.md) can tear appends at a
//! seed-chosen byte, lose the page cache, or lose the anchor rewrite —
//! deterministically. A disabled handle costs one `Option` check per
//! append. [`StoreOptions::break_recovery`] is the drill's teeth mode: it
//! deliberately disables the tail-truncation step of crash recovery so
//! the drill can prove it notices a recovery path that stopped working.

use crate::error::ServiceError;
use bd_chaos::{AnchorFault, Chaos, WriteFault};
use bd_dispersion::canon::SpecDigest;
use bd_dispersion::runner::{Outcome, ScenarioSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the journal inside the store directory.
pub const JOURNAL: &str = "results.jsonl";

/// Environment variable a record key is read from by
/// [`StoreOptions::from_env`] (and therefore every standard open).
pub const STORE_KEY_ENV: &str = "BD_STORE_KEY";

/// Chain link of the empty journal: 32 zeros (no real digest, which is a
/// pair of FNV streams over a domain-tagged body, can collide with it).
pub const GENESIS_TIP: &str = "00000000000000000000000000000000";

/// Domain separator prefixed to every body before digesting, versioning
/// the chain format itself: a digest computed under a different rule can
/// never verify here by accident.
const CHAIN_DOMAIN: &[u8] = b"bdsc1";

/// Domain separator of the keyed record MAC — distinct from the chain
/// domain so a chain digest can never be replayed as a MAC or vice versa.
const MAC_DOMAIN: &[u8] = b"bdsm1";

/// Entry layout constants used to recover the body's exact bytes from a
/// journal line without trusting serializer round-trips. An unkeyed line
/// is `{"body":<body json>,"chain":"<32 hex>"}`; a keyed line is
/// `{"body":<body json>,"chain":"<32 hex>","mac":"<32 hex>"}`.
const LINE_HEAD: &str = "{\"body\":";
const LINE_TAIL: &str = ",\"chain\":\"";
const MAC_TAIL: &str = "\",\"mac\":\"";
/// `,"chain":"` + 32 hex digits + `"}`.
const TAIL_LEN: usize = LINE_TAIL.len() + 32 + 2;
/// `,"chain":"` + 32 hex + `","mac":"` + 32 hex + `"}`.
const KEYED_TAIL_LEN: usize = LINE_TAIL.len() + 32 + MAC_TAIL.len() + 32 + 2;

/// The environment a journal entry was produced under. Committed into the
/// chain, so an audit can tell which code wrote which results — a stored
/// outcome is only as trustworthy as the engine build that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvContract {
    /// Crate version of the writing process.
    pub code_version: String,
    /// The simulation engine the outcome came from.
    pub engine: String,
    /// Journal format tag; bumped on any layout change.
    pub format: String,
}

impl EnvContract {
    /// The contract of this build.
    pub fn current() -> EnvContract {
        EnvContract {
            code_version: env!("CARGO_PKG_VERSION").into(),
            engine: "bd-runtime".into(),
            format: "bdsc1".into(),
        }
    }
}

/// A record-authentication key. With one configured, every appended
/// journal line carries a keyed MAC over its body and verification
/// requires it — the defense the bare hash chain cannot provide against
/// an adversary who rewrites history *and* recomputes the chain.
///
/// Reads from the [`STORE_KEY_ENV`] environment variable by default; the
/// `Debug` rendering never prints the key material.
#[derive(Clone, PartialEq, Eq)]
pub struct StoreKey(Vec<u8>);

impl std::fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StoreKey(<redacted, {} bytes>)", self.0.len())
    }
}

impl StoreKey {
    /// A key from raw bytes. Empty keys are not a thing: they would make
    /// "keyed" silently mean "unkeyed".
    pub fn new(bytes: impl Into<Vec<u8>>) -> Option<StoreKey> {
        let bytes = bytes.into();
        if bytes.is_empty() {
            None
        } else {
            Some(StoreKey(bytes))
        }
    }

    /// The key configured in the environment (`BD_STORE_KEY`), if any.
    pub fn from_env() -> Option<StoreKey> {
        std::env::var(STORE_KEY_ENV).ok().and_then(StoreKey::new)
    }
}

/// Everything an open can be configured with. [`StoreOptions::from_env`]
/// is what the convenience constructors use: no anchor, no chaos, the key
/// from `BD_STORE_KEY`.
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// Out-of-band chain-tip anchor file.
    pub anchor: Option<PathBuf>,
    /// Record-authentication key; appends carry MACs and verification
    /// requires them.
    pub key: Option<StoreKey>,
    /// Fault-injection handle for the write path (drills only;
    /// [`Chaos::off`] in production).
    pub chaos: Chaos,
    /// **Teeth mode** — deliberately disable the truncation step of
    /// torn-tail recovery, leaving damaged bytes in place for the next
    /// append to bury. Exists so the chaos drill can prove it detects a
    /// recovery path that stopped working; never set outside a drill.
    pub break_recovery: bool,
}

impl StoreOptions {
    /// The standard options: key from the environment, everything else
    /// off.
    pub fn from_env() -> StoreOptions {
        StoreOptions {
            key: StoreKey::from_env(),
            ..StoreOptions::default()
        }
    }

    /// Anchor the chain tip in `path`.
    pub fn with_anchor(mut self, path: impl Into<PathBuf>) -> StoreOptions {
        self.anchor = Some(path.into());
        self
    }

    /// Authenticate records under `key` (overrides the environment).
    pub fn with_key(mut self, key: Option<StoreKey>) -> StoreOptions {
        self.key = key;
        self
    }

    /// Thread a fault-injection handle into the write path.
    pub fn with_chaos(mut self, chaos: Chaos) -> StoreOptions {
        self.chaos = chaos;
        self
    }
}

/// Read the tip recorded in an anchor file; `None` when the file is
/// missing or empty (a fresh anchor, initialized at open).
fn read_anchor(path: &Path) -> Result<Option<String>, ServiceError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let tip = text.trim().to_string();
            Ok(if tip.is_empty() { None } else { Some(tip) })
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Persist `tip` to the anchor file via write-temp-then-rename, so a
/// crash mid-write can never leave a torn anchor behind.
fn write_anchor(path: &Path, tip: &str) -> Result<(), ServiceError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{tip}\n"))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The chain digest of a body's exact serialized bytes.
fn chain_digest(body_json: &str) -> String {
    let mut bytes = Vec::with_capacity(CHAIN_DOMAIN.len() + body_json.len());
    bytes.extend_from_slice(CHAIN_DOMAIN);
    bytes.extend_from_slice(body_json.as_bytes());
    SpecDigest::of_bytes(&bytes).to_string()
}

/// The keyed MAC of a body's exact serialized bytes: domain tag, then the
/// length-prefixed key, then the body. The length prefix keeps
/// `(key="ab", body="c…")` and `(key="a", body="bc…")` distinct.
fn record_mac(key: &StoreKey, body_json: &str) -> String {
    let mut bytes = Vec::with_capacity(MAC_DOMAIN.len() + 8 + key.0.len() + body_json.len());
    bytes.extend_from_slice(MAC_DOMAIN);
    bytes.extend_from_slice(&(key.0.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&key.0);
    bytes.extend_from_slice(body_json.as_bytes());
    SpecDigest::of_bytes(&bytes).to_string()
}

/// The chained payload of one journal line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EntryBody {
    /// 32-hex-digit [`SpecDigest`] rendering (the lookup key).
    digest: String,
    /// The spec that produced the outcome (for humans and audits; lookups
    /// go by digest alone).
    spec: ScenarioSpec,
    /// The stored result, replayed verbatim on a hit.
    outcome: Outcome,
    /// Environment the entry was written under.
    env: EnvContract,
    /// Chain digest of the previous line; [`GENESIS_TIP`] for the first.
    prev: String,
}

/// One journal line: the body plus the digest committing to it. Keyed
/// lines additionally carry a trailing `"mac"` member, recovered
/// positionally (the vendored deserializer ignores unknown members).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    body: EntryBody,
    /// `SpecDigest` of `CHAIN_DOMAIN ++ <body json bytes>`.
    chain: String,
}

/// How one journal line fared under verification against the running tip.
enum LineVerdict {
    /// Decodes, layout intact, chain digest correct (and MAC correct when
    /// a key is configured), links to the tip.
    Good(Box<Entry>),
    /// Does not decode as an entry at all — a crash signature when (and
    /// only when) it is the final line.
    Undecodable(String),
    /// Decodes but fails the chain: wrong layout, wrong digest, missing
    /// or wrong MAC, or a broken `prev` link. Never a crash signature.
    ChainViolation(String),
}

/// Positionally recover `(body bytes, mac hex)` from a trimmed line. The
/// layouts are fixed-width from the end, so no serializer round-trip is
/// involved; when both tails could match (a body whose text happens to end
/// like a MAC segment), the chain digest decides — exactly one slice can
/// verify.
fn split_line(trimmed: &str) -> Vec<(&str, Option<&str>)> {
    let mut candidates = Vec::new();
    if trimmed.len() >= LINE_HEAD.len() + KEYED_TAIL_LEN
        && trimmed.starts_with(LINE_HEAD)
        && trimmed.ends_with("\"}")
        && trimmed[trimmed.len() - KEYED_TAIL_LEN..].starts_with(LINE_TAIL)
        && trimmed[trimmed.len() - KEYED_TAIL_LEN + LINE_TAIL.len() + 32..].starts_with(MAC_TAIL)
    {
        let body = &trimmed[LINE_HEAD.len()..trimmed.len() - KEYED_TAIL_LEN];
        let mac = &trimmed[trimmed.len() - 34..trimmed.len() - 2];
        candidates.push((body, Some(mac)));
    }
    if trimmed.len() >= LINE_HEAD.len() + TAIL_LEN
        && trimmed.starts_with(LINE_HEAD)
        && trimmed.ends_with("\"}")
        && trimmed[trimmed.len() - TAIL_LEN..].starts_with(LINE_TAIL)
    {
        candidates.push((&trimmed[LINE_HEAD.len()..trimmed.len() - TAIL_LEN], None));
    }
    candidates
}

/// Verify one trimmed journal line against the expected `tip` (and `key`,
/// when the store is keyed).
fn verify_line(trimmed: &str, tip: &str, key: Option<&StoreKey>) -> LineVerdict {
    let entry: Entry = match serde_json::from_str(trimmed) {
        Ok(e) => e,
        Err(e) => return LineVerdict::Undecodable(e.to_string()),
    };
    let candidates = split_line(trimmed);
    if candidates.is_empty() {
        return LineVerdict::ChainViolation("entry layout is not the journal format".into());
    }
    let Some((body_json, mac)) = candidates
        .iter()
        .find(|(body, _)| chain_digest(body) == entry.chain)
    else {
        let recomputed = chain_digest(candidates[0].0);
        return LineVerdict::ChainViolation(format!(
            "chain digest mismatch: recorded {}, recomputed {recomputed}",
            entry.chain
        ));
    };
    if let Some(key) = key {
        match mac {
            None => {
                return LineVerdict::ChainViolation(
                    "record carries no MAC but this store is keyed — journal written \
                     unkeyed (or MAC stripped); keying starts with a fresh journal"
                        .into(),
                );
            }
            Some(mac) if *mac != record_mac(key, body_json) => {
                return LineVerdict::ChainViolation(
                    "record MAC does not verify under the configured key: forged record \
                     or wrong key"
                        .into(),
                );
            }
            Some(_) => {}
        }
    }
    if entry.body.prev != tip {
        return LineVerdict::ChainViolation(format!(
            "broken link: prev {} but the preceding entry's digest is {tip}",
            entry.body.prev
        ));
    }
    LineVerdict::Good(Box::new(entry))
}

/// Counters a store accumulates over its lifetime (process-local; they
/// reset on reopen, unlike the journal). [`ResultStore::counters`] reads
/// them in one acquisition of the same lock `get`/`put` update them
/// under, so a snapshot is a single point in time — never a torn view
/// mixing fields from before and after a concurrent update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Lookups answered from the index.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries appended by this process.
    pub appended: u64,
    /// Journal lines dropped by truncated-tail recovery at open.
    pub recovered: u64,
    /// Appends that failed (surfaced as errors; the entry is not
    /// indexed). The daemon degrades after the first of these.
    pub write_failures: u64,
}

/// What a successful [`ResultStore::verify_chain`] audit found.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainAudit {
    /// Entries whose chain verified.
    pub entries: usize,
    /// Chain digest of the final entry ([`GENESIS_TIP`] when empty) — the
    /// value to anchor externally if the storage itself is untrusted.
    pub tip: String,
}

struct Inner {
    index: HashMap<SpecDigest, Outcome>,
    file: File,
    /// Chain digest of the last journal line; the next `put` links to it.
    tip: String,
    /// Lifetime counters, kept under the one lock so `counters()` is a
    /// consistent snapshot (OBSERVABILITY.md, torn-read fix).
    hits: u64,
    misses: u64,
    appended: u64,
    write_failures: u64,
}

/// A content-addressed, append-only store of run [`Outcome`]s. Sync: the
/// daemon's worker pool shares one store across threads.
pub struct ResultStore {
    path: PathBuf,
    /// Out-of-band tip anchor; every append rewrites it and every audit
    /// checks against it. `None` falls back to chain-only verification.
    anchor: Option<PathBuf>,
    /// Record-authentication key; `None` verifies the chain alone.
    key: Option<StoreKey>,
    /// Fault-injection handle ([`Chaos::off`] outside drills).
    chaos: Chaos,
    inner: Mutex<Inner>,
    recovered: u64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("entries", &self.len())
            .field("keyed", &self.key.is_some())
            .finish()
    }
}

/// How an anchored tip relates to the journal's recomputed one.
enum AnchorVerdict {
    /// Identical, or a benign one-entry crash window (journal ahead by
    /// exactly the final entry); the `bool` is whether to re-anchor.
    Accept(bool),
    Mismatch {
        anchored_tip: String,
    },
}

/// Judge `anchored` against the replayed journal: `tip` is the journal's
/// final chain digest, `prev_tip` the digest before the final entry.
/// `put` appends the journal line before rewriting the anchor, so a crash
/// between the two legitimately leaves the journal one entry ahead —
/// that, and only that, is accepted besides an exact match. A journal
/// *behind* its anchor (truncation) or further ahead (not a single-append
/// crash) mismatches.
fn judge_anchor(anchored: Option<String>, tip: &str, prev_tip: Option<&str>) -> AnchorVerdict {
    match anchored {
        None => AnchorVerdict::Accept(true),
        Some(a) if a == tip => AnchorVerdict::Accept(false),
        Some(a) if prev_tip == Some(a.as_str()) => AnchorVerdict::Accept(true),
        Some(a) => AnchorVerdict::Mismatch { anchored_tip: a },
    }
}

impl ResultStore {
    /// Open (creating if needed) the store under `dir`, replaying the
    /// journal into the in-memory index. Every line is chain-verified as
    /// it loads; only an undecodable *final* line (a torn append) is
    /// recovered, by truncating to the last good entry. Key from the
    /// environment (`BD_STORE_KEY`), no anchor, no chaos.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResultStore, ServiceError> {
        ResultStore::open_with(dir, StoreOptions::from_env())
    }

    /// Open the store with its chain tip **anchored out-of-band** in
    /// `anchor` (any writable path, ideally on storage the journal's
    /// adversary cannot reach). A missing or empty anchor file is
    /// initialized from the journal's current tip; an existing one must
    /// match the tip recomputed from the journal — modulo the one-entry
    /// crash window (see the module docs) — or the open fails with
    /// [`ServiceError::AnchorMismatch`]. This is what makes a tail
    /// truncated exactly at a line boundary (invisible to the chain
    /// itself) detectable across restarts. Every subsequent `put`
    /// rewrites the anchor atomically.
    pub fn open_anchored(
        dir: impl AsRef<Path>,
        anchor: impl Into<PathBuf>,
    ) -> Result<ResultStore, ServiceError> {
        ResultStore::open_with(dir, StoreOptions::from_env().with_anchor(anchor))
    }

    /// Open with explicit [`StoreOptions`] — the fully-general
    /// constructor the drills and the daemon use.
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<ResultStore, ServiceError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;

        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut index = HashMap::new();
        let mut tip = GENESIS_TIP.to_string();
        let mut prev_tip: Option<String> = None;
        let mut good_bytes = 0usize;
        let mut recovered = 0u64;
        let mut offset = 0usize;
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let start = offset;
            offset += line.len();
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                good_bytes = offset;
                continue;
            }
            match verify_line(trimmed, &tip, options.key.as_ref()) {
                LineVerdict::Good(entry) => {
                    let digest = SpecDigest::parse(&entry.body.digest).ok_or_else(|| {
                        ServiceError::Tampered {
                            path: path.clone(),
                            index: lineno + 1,
                            msg: format!("bad digest {:?}", entry.body.digest),
                        }
                    })?;
                    index.insert(digest, entry.body.outcome);
                    prev_tip = Some(std::mem::replace(&mut tip, entry.chain));
                    good_bytes = offset;
                }
                LineVerdict::Undecodable(msg) => {
                    // Only a damaged *tail* is recoverable: it must be the
                    // last line of the file.
                    if offset == text.len() {
                        recovered = 1;
                        if options.break_recovery {
                            // Teeth mode: "recover" without truncating —
                            // the torn bytes stay for the next append to
                            // bury, which is exactly the corruption the
                            // drill must detect downstream.
                            good_bytes = offset;
                        } else {
                            good_bytes = start;
                        }
                        break;
                    }
                    return Err(ServiceError::Corrupt {
                        path,
                        line: lineno + 1,
                        msg,
                    });
                }
                LineVerdict::ChainViolation(msg) => {
                    return Err(ServiceError::Tampered {
                        path,
                        index: lineno + 1,
                        msg,
                    });
                }
            }
        }
        if good_bytes < text.len() {
            file.set_len(good_bytes as u64)?;
            file.seek(SeekFrom::End(0))?;
        } else if !text.is_empty() && !text.ends_with('\n') && !options.break_recovery {
            // A crash can persist the final record in full but lose its
            // trailing newline: the record replays fine, but appending
            // after it verbatim would merge two records onto one line.
            // Terminate it before the store accepts writes.
            file.write_all(b"\n")?;
        }

        if let Some(anchor_path) = &options.anchor {
            match judge_anchor(read_anchor(anchor_path)?, &tip, prev_tip.as_deref()) {
                AnchorVerdict::Accept(true) => write_anchor(anchor_path, &tip)?,
                AnchorVerdict::Accept(false) => {}
                AnchorVerdict::Mismatch { anchored_tip } => {
                    return Err(ServiceError::AnchorMismatch {
                        path,
                        anchor: anchor_path.clone(),
                        journal_tip: tip,
                        anchored_tip,
                    });
                }
            }
        }

        Ok(ResultStore {
            path,
            anchor: options.anchor,
            key: options.key,
            chaos: options.chaos,
            inner: Mutex::new(Inner {
                index,
                file,
                tip,
                hits: 0,
                misses: 0,
                appended: 0,
                write_failures: 0,
            }),
            recovered,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the out-of-band tip anchor, when one is configured.
    pub fn anchor(&self) -> Option<&Path> {
        self.anchor.as_deref()
    }

    /// Whether records are keyed (appends carry MACs, verification
    /// requires them).
    pub fn keyed(&self) -> bool {
        self.key.is_some()
    }

    /// The fault-injection handle this store was opened with
    /// ([`Chaos::off`] outside drills) — the drill reads its counters.
    pub fn chaos(&self) -> &Chaos {
        &self.chaos
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// Whether the store holds no outcome.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current chain tip ([`GENESIS_TIP`] when empty).
    pub fn tip(&self) -> String {
        self.inner.lock().expect("store lock").tip.clone()
    }

    /// Lifetime counters (process-local), read in one lock acquisition —
    /// a point-in-time snapshot, never a torn view.
    pub fn counters(&self) -> StoreCounters {
        let inner = self.inner.lock().expect("store lock");
        StoreCounters {
            hits: inner.hits,
            misses: inner.misses,
            appended: inner.appended,
            recovered: self.recovered,
            write_failures: inner.write_failures,
        }
    }

    /// The stored outcome for `digest`, counting a hit or a miss.
    pub fn get(&self, digest: &SpecDigest) -> Option<Outcome> {
        let mut inner = self.inner.lock().expect("store lock");
        match inner.index.get(digest) {
            Some(out) => {
                let out = out.clone();
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Persist `outcome` under `digest`, appending one chain-linked
    /// journal line and flushing it. Idempotent: re-putting an existing
    /// digest is a no-op (returns `false`) — first write wins, matching
    /// the append-only journal's replay semantics.
    ///
    /// On a write failure (real, or injected by the chaos handle) the
    /// entry is **not** indexed: the in-memory view never claims an
    /// outcome the journal did not durably record, so a resubmission
    /// after recovery re-simulates and re-appends.
    pub fn put(
        &self,
        digest: SpecDigest,
        spec: &ScenarioSpec,
        outcome: &Outcome,
    ) -> Result<bool, ServiceError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&digest) {
            return Ok(false);
        }
        let body = EntryBody {
            digest: digest.to_string(),
            spec: spec.clone(),
            outcome: outcome.clone(),
            env: EnvContract::current(),
            prev: inner.tip.clone(),
        };
        let body_json = serde_json::to_string(&body)
            .map_err(|e| ServiceError::Protocol(format!("encode store entry: {e}")))?;
        let chain = chain_digest(&body_json);
        // Assembled positionally, exactly the layout `verify_line` slices.
        let line = match &self.key {
            None => format!("{LINE_HEAD}{body_json}{LINE_TAIL}{chain}\"}}\n"),
            Some(key) => {
                let mac = record_mac(key, &body_json);
                format!("{LINE_HEAD}{body_json}{LINE_TAIL}{chain}{MAC_TAIL}{mac}\"}}\n")
            }
        };
        match self.chaos.journal_write(line.len()) {
            WriteFault::Clean => {
                inner.file.write_all(line.as_bytes())?;
                inner.file.flush()?;
            }
            WriteFault::Torn { prefix } => {
                // Emulated kill mid-write(2): exactly `prefix` bytes reach
                // the file, then the process is dead — the entry is not
                // indexed and the error names the kill.
                let _ = inner.file.write_all(&line.as_bytes()[..prefix]);
                let _ = inner.file.flush();
                inner.write_failures += 1;
                return Err(ServiceError::Io(std::io::Error::other(format!(
                    "chaos: killed mid-append after {prefix} of {} bytes",
                    line.len()
                ))));
            }
            WriteFault::FsyncLost => {
                inner.write_failures += 1;
                return Err(ServiceError::Io(std::io::Error::other(
                    "chaos: append lost with the page cache",
                )));
            }
        }
        inner.index.insert(digest, outcome.clone());
        inner.tip = chain;
        inner.appended += 1;
        // Anchor after the journal write, under the same lock: the anchor
        // always holds the tip of a journal state that exists on disk.
        if let Some(anchor_path) = &self.anchor {
            match self.chaos.anchor_write() {
                AnchorFault::Clean => write_anchor(anchor_path, &inner.tip)?,
                // Emulated kill (or loss) between the journal append and
                // the anchor rename: the journal runs ahead by one — the
                // crash window `judge_anchor` accepts on reopen.
                AnchorFault::Lost => {}
            }
        }
        Ok(true)
    }

    /// Re-read the journal from disk and verify the whole chain — the
    /// `/audit` endpoint's workhorse. Holds the store lock, so no append
    /// can interleave with the read.
    ///
    /// Unlike `open`, the audit answers one question — "is the file on
    /// disk the file this store wrote?" — so *any* undecodable line,
    /// interior or final, fails it: while the lock is held no append is in
    /// flight, hence a torn tail cannot be ours. All failures report the
    /// 1-based index of the first bad entry. When the store is keyed,
    /// every record's MAC must verify. When the store is anchored, the
    /// recomputed tip must additionally match the anchored one (modulo
    /// the one-entry crash window) — the check that catches a tail
    /// truncated exactly at a line boundary, which leaves a perfectly
    /// valid (shorter) chain behind.
    pub fn verify_chain(&self) -> Result<ChainAudit, ServiceError> {
        let _inner = self.inner.lock().expect("store lock");
        let text = std::fs::read_to_string(&self.path)?;
        let mut tip = GENESIS_TIP.to_string();
        let mut prev_tip: Option<String> = None;
        let mut entries = 0usize;
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            match verify_line(trimmed, &tip, self.key.as_ref()) {
                LineVerdict::Good(entry) => {
                    prev_tip = Some(std::mem::replace(&mut tip, entry.chain));
                    entries += 1;
                }
                LineVerdict::Undecodable(msg) | LineVerdict::ChainViolation(msg) => {
                    return Err(ServiceError::Tampered {
                        path: self.path.clone(),
                        index: lineno + 1,
                        msg,
                    });
                }
            }
        }
        if let Some(anchor_path) = &self.anchor {
            if let AnchorVerdict::Mismatch { anchored_tip } =
                judge_anchor(read_anchor(anchor_path)?, &tip, prev_tip.as_deref())
            {
                return Err(ServiceError::AnchorMismatch {
                    path: self.path.clone(),
                    anchor: anchor_path.clone(),
                    journal_tip: tip,
                    anchored_tip,
                });
            }
        }
        Ok(ChainAudit { entries, tip })
    }
}
