//! The content-addressed result store.
//!
//! One directory, one append-only `results.jsonl`: each line is a complete
//! JSON object `{"digest": "<32 hex>", "spec": {...}, "outcome": {...}}`
//! keyed by the scenario's [`SpecDigest`] (see `bd_dispersion::canon` for
//! the digest definition). The store keeps a full in-memory index — a
//! lookup never touches the disk — and appends synchronously on `put`, so
//! a process crash can lose at most the entry being written.
//!
//! **Crash tolerance:** on open, the journal is replayed line by line. A
//! damaged *final* line is the signature of a crash mid-append; it is
//! dropped and the file truncated to the last good entry, so the next
//! append continues a clean journal. Damage anywhere *before* the tail
//! means something other than a crash happened to the file, and the store
//! refuses to open rather than silently serve half a journal.

use crate::error::ServiceError;
use bd_dispersion::canon::SpecDigest;
use bd_dispersion::runner::{Outcome, ScenarioSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File name of the journal inside the store directory.
pub const JOURNAL: &str = "results.jsonl";

/// One journal line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// 32-hex-digit [`SpecDigest`] rendering.
    digest: String,
    /// The spec that produced the outcome (for humans and audits; lookups
    /// go by digest alone).
    spec: ScenarioSpec,
    /// The stored result, replayed verbatim on a hit.
    outcome: Outcome,
}

/// Counters a store accumulates over its lifetime (process-local; they
/// reset on reopen, unlike the journal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Lookups answered from the index.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries appended by this process.
    pub appended: u64,
    /// Journal lines dropped by truncated-tail recovery at open.
    pub recovered: u64,
}

struct Inner {
    index: HashMap<SpecDigest, Outcome>,
    file: File,
}

/// A content-addressed, append-only store of run [`Outcome`]s. Sync: the
/// daemon's worker pool shares one store across threads.
pub struct ResultStore {
    path: PathBuf,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    appended: AtomicU64,
    recovered: u64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("entries", &self.len())
            .finish()
    }
}

impl ResultStore {
    /// Open (creating if needed) the store under `dir`, replaying the
    /// journal into the in-memory index with truncated-tail recovery.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResultStore, ServiceError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;

        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut index = HashMap::new();
        let mut good_bytes = 0usize;
        let mut recovered = 0u64;
        let mut offset = 0usize;
        for (lineno, line) in text.split_inclusive('\n').enumerate() {
            let start = offset;
            offset += line.len();
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                good_bytes = offset;
                continue;
            }
            match serde_json::from_str::<Entry>(trimmed) {
                Ok(entry) => {
                    let digest =
                        SpecDigest::parse(&entry.digest).ok_or_else(|| ServiceError::Corrupt {
                            path: path.clone(),
                            line: lineno + 1,
                            msg: format!("bad digest {:?}", entry.digest),
                        })?;
                    index.insert(digest, entry.outcome);
                    good_bytes = offset;
                }
                Err(e) => {
                    // Only a damaged *tail* is recoverable: it must be the
                    // last line of the file.
                    if offset == text.len() {
                        recovered = 1;
                        good_bytes = start;
                        break;
                    }
                    return Err(ServiceError::Corrupt {
                        path,
                        line: lineno + 1,
                        msg: e.to_string(),
                    });
                }
            }
        }
        if good_bytes < text.len() {
            file.set_len(good_bytes as u64)?;
            file.seek(SeekFrom::End(0))?;
        }

        Ok(ResultStore {
            path,
            inner: Mutex::new(Inner { index, file }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            recovered,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// Whether the store holds no outcome.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters (process-local).
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appended: self.appended.load(Ordering::Relaxed),
            recovered: self.recovered,
        }
    }

    /// The stored outcome for `digest`, counting a hit or a miss.
    pub fn get(&self, digest: &SpecDigest) -> Option<Outcome> {
        let inner = self.inner.lock().expect("store lock");
        match inner.index.get(digest) {
            Some(out) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist `outcome` under `digest`, appending one journal line and
    /// flushing it. Idempotent: re-putting an existing digest is a no-op
    /// (returns `false`) — first write wins, matching the append-only
    /// journal's replay semantics.
    pub fn put(
        &self,
        digest: SpecDigest,
        spec: &ScenarioSpec,
        outcome: &Outcome,
    ) -> Result<bool, ServiceError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&digest) {
            return Ok(false);
        }
        let entry = Entry {
            digest: digest.to_string(),
            spec: spec.clone(),
            outcome: outcome.clone(),
        };
        let mut line = serde_json::to_string(&entry)
            .map_err(|e| ServiceError::Protocol(format!("encode store entry: {e}")))?;
        line.push('\n');
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        inner.index.insert(digest, outcome.clone());
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }
}
