//! Error type shared by the store, the daemon, and the client.

use bd_graphs::GraphError;
use std::fmt;
use std::path::PathBuf;

/// Why a serving-layer operation failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// A store file is damaged *before* its tail — truncated tails are
    /// recovered silently, interior damage is refused loudly.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// 1-based line of the first undecodable entry.
        line: usize,
        /// Decoder message.
        msg: String,
    },
    /// The journal's hash chain does not verify: evidence of an in-place
    /// edit, reorder, or truncate-then-append splice (see the `store`
    /// module docs for exactly what the chain can and cannot prove).
    Tampered {
        /// The failing journal.
        path: PathBuf,
        /// 1-based index of the first entry that breaks the chain.
        index: usize,
        /// What broke: digest mismatch, broken link, or bad layout.
        msg: String,
    },
    /// The journal's chain verifies internally but its tip does not match
    /// the externally anchored tip — the signature of a tail truncated
    /// exactly at a line boundary (which the chain alone cannot see) or of
    /// a wholesale rewrite.
    AnchorMismatch {
        /// The journal whose tip was checked.
        path: PathBuf,
        /// The anchor file holding the expected tip.
        anchor: PathBuf,
        /// Tip recomputed from the journal on disk.
        journal_tip: String,
        /// Tip recorded out-of-band.
        anchored_tip: String,
    },
    /// An I/O deadline elapsed before the operation completed — a typed
    /// peer of [`ServiceError::Io`], so callers (and the client's retry
    /// loop) can tell "the peer is slow or stalled" from every other I/O
    /// failure without string-matching.
    Timeout {
        /// What was being waited on: `"connect"`, `"read"`, `"write"`,
        /// or `"request"` (the whole-request total deadline).
        what: &'static str,
        /// The deadline that elapsed.
        after: std::time::Duration,
    },
    /// Malformed HTTP traffic or JSON payload.
    Protocol(String),
    /// The server answered with a non-success status.
    Http {
        /// HTTP status code.
        status: u16,
        /// Response body (the daemon always sends a JSON error object).
        msg: String,
    },
    /// A graph source could not be materialized.
    Graph(GraphError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Corrupt { path, line, msg } => {
                write!(f, "corrupt store {}:{line}: {msg}", path.display())
            }
            ServiceError::Tampered { path, index, msg } => {
                write!(
                    f,
                    "tamper-evident journal {} fails at entry {index}: {msg}",
                    path.display()
                )
            }
            ServiceError::AnchorMismatch {
                path,
                anchor,
                journal_tip,
                anchored_tip,
            } => {
                write!(
                    f,
                    "journal {} tip {journal_tip} does not match the tip {anchored_tip} \
                     anchored in {} — tail truncation or rewrite",
                    path.display(),
                    anchor.display()
                )
            }
            ServiceError::Timeout { what, after } => {
                write!(f, "timeout: {what} did not complete within {after:?}")
            }
            ServiceError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServiceError::Http { status, msg } => write!(f, "http {status}: {msg}"),
            ServiceError::Graph(e) => write!(f, "graph source: {e}"),
        }
    }
}

impl ServiceError {
    /// Whether this failure is transport-level and plausibly transient —
    /// the class the client's retry loop is allowed to retry for
    /// idempotent requests (every request in this API is: results are
    /// content-addressed by `SpecDigest`, so re-submitting a batch the
    /// daemon already ran replays stored outcomes instead of redoing
    /// work). Store verdicts (`Corrupt`/`Tampered`/`AnchorMismatch`) and
    /// 4xx answers are *facts*, not weather — never retried.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServiceError::Io(_) | ServiceError::Timeout { .. } | ServiceError::Protocol(_) => true,
            ServiceError::Http { status, .. } => *status >= 500 || *status == 429,
            _ => false,
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<GraphError> for ServiceError {
    fn from(e: GraphError) -> Self {
        ServiceError::Graph(e)
    }
}
