//! A deliberately small HTTP/1.1 implementation over `std::net` — enough
//! for a JSON API with `Connection: close` semantics, and nothing more.
//! No keep-alive, no chunked encoding, no TLS; requests and responses are
//! bounded, bodies are UTF-8 JSON.
//!
//! Both sides live here: [`read_request_with`]/[`respond`] for the
//! daemon, [`call`]/[`call_with`] for the client. Sharing the parser
//! keeps the two ends honest with each other.
//!
//! **Deadlines.** Every socket carries three ([`Deadlines`]): a per-read
//! idle deadline, a write deadline, and a *total* request deadline
//! enforced across the whole read loop. The per-read deadline catches a
//! peer that goes silent; the total deadline catches the slow-loris
//! shape — a peer that drips one byte per poll, resetting the idle timer
//! forever while holding a connection (and its thread) hostage. Elapsed
//! deadlines surface as the typed [`ServiceError::Timeout`], never as a
//! bare I/O error.

use crate::error::ServiceError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Upper bound on header block + body we accept (a defensive cap, not a
/// protocol limit; Explicit graph adjacencies are the largest legit body).
const MAX_MESSAGE: usize = 16 * 1024 * 1024;

/// Default socket read/write deadline on both ends.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Default whole-request deadline (the slow-loris bound).
pub const TOTAL_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-request I/O deadlines. `read` and `write` bound a single stalled
/// syscall; `total` bounds the entire request — progress does not reset
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadlines {
    /// Longest a single read may sit idle.
    pub read: Duration,
    /// Longest a single write may block.
    pub write: Duration,
    /// Longest the whole request (headers + body) may take, regardless
    /// of how steadily bytes trickle in.
    pub total: Duration,
}

impl Default for Deadlines {
    fn default() -> Deadlines {
        Deadlines {
            read: IO_TIMEOUT,
            write: IO_TIMEOUT,
            total: TOTAL_TIMEOUT,
        }
    }
}

impl Deadlines {
    /// All three deadlines set to `d` — the drills' way of making a
    /// daemon impatient.
    pub fn uniform(d: Duration) -> Deadlines {
        Deadlines {
            read: d,
            write: d,
            total: d,
        }
    }
}

/// Whether an I/O error is a socket deadline elapsing. `WouldBlock` is
/// included because some platforms report read-timeout that way on
/// nonblocking-style timeouts.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// Map an I/O failure from a `read` on `stream` into the typed error.
fn read_err(e: std::io::Error, after: Duration) -> ServiceError {
    if is_timeout(&e) {
        ServiceError::Timeout {
            what: "read",
            after,
        }
    } else {
        ServiceError::Io(e)
    }
}

/// Tracks the total-request deadline across a read loop.
struct Clock {
    deadline: Instant,
    total: Duration,
    per_read: Duration,
}

impl Clock {
    fn start(deadlines: Deadlines) -> Clock {
        Clock {
            deadline: Instant::now() + deadlines.total,
            total: deadlines.total,
            per_read: deadlines.read,
        }
    }

    /// Arm the socket for the next read: the per-read deadline, clipped
    /// so the read can never outlive the total one. Errors with the typed
    /// timeout once the total deadline has passed.
    fn arm(&self, stream: &TcpStream) -> Result<(), ServiceError> {
        let remaining = self
            .deadline
            .checked_duration_since(Instant::now())
            .filter(|r| !r.is_zero())
            .ok_or(ServiceError::Timeout {
                what: "request",
                after: self.total,
            })?;
        // `set_read_timeout` rejects zero; a floor of 1ms can overshoot
        // the total deadline by at most that much.
        let next = self.per_read.min(remaining).max(Duration::from_millis(1));
        stream.set_read_timeout(Some(next))?;
        Ok(())
    }
}

/// A parsed request line + body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw body (empty when no `Content-Length`).
    pub body: String,
}

/// Read one HTTP/1.1 request from `stream` under the default deadlines.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServiceError> {
    read_request_with(stream, Deadlines::default())
}

/// Read one HTTP/1.1 request from `stream`, enforcing `deadlines`.
pub fn read_request_with(
    stream: &mut TcpStream,
    deadlines: Deadlines,
) -> Result<Request, ServiceError> {
    let clock = Clock::start(deadlines);
    stream.set_write_timeout(Some(deadlines.write))?;
    let (head, mut rest) = read_until_blank_line(stream, &clock)?;

    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ServiceError::Protocol("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServiceError::Protocol(format!("bad content-length {value}")))?;
            }
        }
    }
    if content_length > MAX_MESSAGE {
        return Err(ServiceError::Protocol(format!(
            "body of {content_length} bytes exceeds the {MAX_MESSAGE} cap"
        )));
    }
    while rest.len() < content_length {
        clock.arm(stream)?;
        let mut buf = [0u8; 8192];
        let got = stream
            .read(&mut buf)
            .map_err(|e| read_err(e, deadlines.read))?;
        if got == 0 {
            return Err(ServiceError::Protocol("connection closed mid-body".into()));
        }
        rest.extend_from_slice(&buf[..got]);
    }
    rest.truncate(content_length);
    let body =
        String::from_utf8(rest).map_err(|_| ServiceError::Protocol("body is not UTF-8".into()))?;
    Ok(Request { method, path, body })
}

/// Read until the `\r\n\r\n` header terminator; returns (header block
/// without the terminator, any body bytes already read past it).
fn read_until_blank_line(
    stream: &mut TcpStream,
    clock: &Clock,
) -> Result<(String, Vec<u8>), ServiceError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(pos) = find_terminator(&buf) {
            let head = String::from_utf8(buf[..pos].to_vec())
                .map_err(|_| ServiceError::Protocol("headers are not UTF-8".into()))?;
            return Ok((head, buf[pos + 4..].to_vec()));
        }
        if buf.len() > MAX_MESSAGE {
            return Err(ServiceError::Protocol("header block too large".into()));
        }
        clock.arm(stream)?;
        let mut chunk = [0u8; 8192];
        let got = stream
            .read(&mut chunk)
            .map_err(|e| read_err(e, clock.per_read))?;
        if got == 0 {
            return Err(ServiceError::Protocol(
                "connection closed before headers ended".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one JSON response and close the write side.
pub fn respond(stream: &mut TcpStream, status: u16, json_body: &str) -> std::io::Result<()> {
    respond_with(stream, status, "application/json", json_body)
}

/// Write one response with an explicit content type (the `/metrics`
/// endpoint serves Prometheus text, not JSON) and close the write side.
pub fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Client side with default timeouts: one request, one response,
/// connection closed.
pub fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServiceError> {
    call_with(addr, method, path, body, IO_TIMEOUT, IO_TIMEOUT)
}

/// Client side with explicit connect and read/write deadlines. Stalls
/// surface as the typed [`ServiceError::Timeout`]: `"connect"` when the
/// peer never accepts, `"read"` when the response stops arriving.
pub fn call_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<(u16, String), ServiceError> {
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout).map_err(|e| {
        if is_timeout(&e) {
            ServiceError::Timeout {
                what: "connect",
                after: connect_timeout,
            }
        } else {
            ServiceError::Io(e)
        }
    })?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let send = |e: std::io::Error| {
        if is_timeout(&e) {
            ServiceError::Timeout {
                what: "write",
                after: io_timeout,
            }
        } else {
            ServiceError::Io(e)
        }
    };
    stream.write_all(head.as_bytes()).map_err(send)?;
    stream.write_all(body.as_bytes()).map_err(send)?;
    stream.flush().map_err(send)?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| read_err(e, io_timeout))?;
    let pos = find_terminator(&raw)
        .ok_or_else(|| ServiceError::Protocol("response without header terminator".into()))?;
    let head = String::from_utf8(raw[..pos].to_vec())
        .map_err(|_| ServiceError::Protocol("response headers are not UTF-8".into()))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServiceError::Protocol(format!("bad status line in {head:?}")))?;
    let body = String::from_utf8(raw[pos + 4..].to_vec())
        .map_err(|_| ServiceError::Protocol("response body is not UTF-8".into()))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            respond(&mut stream, 200, &req.body).unwrap();
        });
        let (status, body) = call(addr, "POST", "/echo?q=1", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"x\":1}");
        server.join().unwrap();
    }

    #[test]
    fn get_without_body_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
            respond(&mut stream, 404, "{\"error\":\"nope\"}").unwrap();
        });
        let (status, body) = call(addr, "GET", "/missing", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("nope"));
        server.join().unwrap();
    }

    #[test]
    fn idle_peer_hits_the_typed_read_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let err = read_request_with(&mut stream, Deadlines::uniform(Duration::from_millis(60)))
                .unwrap_err();
            match err {
                ServiceError::Timeout { what, .. } => assert!(what == "read" || what == "request"),
                other => panic!("expected a timeout, got {other}"),
            }
        });
        // Connect, send nothing, keep the socket open past the deadline.
        let stream = TcpStream::connect(addr).unwrap();
        server.join().unwrap();
        drop(stream);
    }

    #[test]
    fn slow_loris_trickle_hits_the_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let deadlines = Deadlines {
            read: Duration::from_millis(200),
            write: Duration::from_millis(200),
            total: Duration::from_millis(150),
        };
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let err = read_request_with(&mut stream, deadlines).unwrap_err();
            match err {
                // Each drip lands within the idle deadline, so only the
                // total-request clock can end this.
                ServiceError::Timeout { what, .. } => assert_eq!(what, "request"),
                other => panic!("expected the total deadline, got {other}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        for byte in b"GET / HTTP/1.1\r\n" {
            if stream.write_all(&[*byte]).is_err() {
                break; // server gave up — exactly the point
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        server.join().unwrap();
    }
}
