//! A deliberately small HTTP/1.1 implementation over `std::net` — enough
//! for a JSON API with `Connection: close` semantics, and nothing more.
//! No keep-alive, no chunked encoding, no TLS; requests and responses are
//! bounded, bodies are UTF-8 JSON.
//!
//! Both sides live here: [`read_request`]/[`respond`] for the daemon,
//! [`call`] for the client. Sharing the parser keeps the two ends honest
//! with each other.

use crate::error::ServiceError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on header block + body we accept (a defensive cap, not a
/// protocol limit; Explicit graph adjacencies are the largest legit body).
const MAX_MESSAGE: usize = 16 * 1024 * 1024;

/// Socket read/write deadline on both ends.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request line + body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw body (empty when no `Content-Length`).
    pub body: String,
}

/// Read one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServiceError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (head, mut rest) = read_until_blank_line(stream)?;

    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ServiceError::Protocol("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ServiceError::Protocol("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServiceError::Protocol(format!("bad content-length {value}")))?;
            }
        }
    }
    if content_length > MAX_MESSAGE {
        return Err(ServiceError::Protocol(format!(
            "body of {content_length} bytes exceeds the {MAX_MESSAGE} cap"
        )));
    }
    while rest.len() < content_length {
        let mut buf = [0u8; 8192];
        let got = stream.read(&mut buf)?;
        if got == 0 {
            return Err(ServiceError::Protocol("connection closed mid-body".into()));
        }
        rest.extend_from_slice(&buf[..got]);
    }
    rest.truncate(content_length);
    let body =
        String::from_utf8(rest).map_err(|_| ServiceError::Protocol("body is not UTF-8".into()))?;
    Ok(Request { method, path, body })
}

/// Read until the `\r\n\r\n` header terminator; returns (header block
/// without the terminator, any body bytes already read past it).
fn read_until_blank_line(stream: &mut TcpStream) -> Result<(String, Vec<u8>), ServiceError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(pos) = find_terminator(&buf) {
            let head = String::from_utf8(buf[..pos].to_vec())
                .map_err(|_| ServiceError::Protocol("headers are not UTF-8".into()))?;
            return Ok((head, buf[pos + 4..].to_vec()));
        }
        if buf.len() > MAX_MESSAGE {
            return Err(ServiceError::Protocol("header block too large".into()));
        }
        let mut chunk = [0u8; 8192];
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(ServiceError::Protocol(
                "connection closed before headers ended".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one JSON response and close the write side.
pub fn respond(stream: &mut TcpStream, status: u16, json_body: &str) -> std::io::Result<()> {
    respond_with(stream, status, "application/json", json_body)
}

/// Write one response with an explicit content type (the `/metrics`
/// endpoint serves Prometheus text, not JSON) and close the write side.
pub fn respond_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Client side: one request, one response, connection closed.
pub fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServiceError> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let pos = find_terminator(&raw)
        .ok_or_else(|| ServiceError::Protocol("response without header terminator".into()))?;
    let head = String::from_utf8(raw[..pos].to_vec())
        .map_err(|_| ServiceError::Protocol("response headers are not UTF-8".into()))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServiceError::Protocol(format!("bad status line in {head:?}")))?;
    let body = String::from_utf8(raw[pos + 4..].to_vec())
        .map_err(|_| ServiceError::Protocol("response body is not UTF-8".into()))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            respond(&mut stream, 200, &req.body).unwrap();
        });
        let (status, body) = call(addr, "POST", "/echo?q=1", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"x\":1}");
        server.join().unwrap();
    }

    #[test]
    fn get_without_body_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
            respond(&mut stream, 404, "{\"error\":\"nope\"}").unwrap();
        });
        let (status, body) = call(addr, "GET", "/missing", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("nope"));
        server.join().unwrap();
    }
}
