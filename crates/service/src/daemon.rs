//! The scenario-serving daemon: a `std::net::TcpListener` front end, a
//! bounded job queue, and a worker pool that funnels every batch into the
//! shared store-backed [`CachedPlanner`] path.
//!
//! Life of a batch: `POST /batches` validates the JSON, allocates an id,
//! and `try_send`s the id into the bounded queue (`503` when full — the
//! daemon sheds load instead of buffering unboundedly). A worker pops the
//! id, materializes the graph (memoized by source, capped), runs a
//! [`CachedPlanner`] over the daemon's [`ResultStore`], and parks results
//! and [`CacheStats`] on the batch record. `GET /batches/:id` serves the
//! record at any point in its lifecycle; `GET /stats` aggregates across
//! batches.
//!
//! Each accepted connection is handled on its own thread (socket
//! read/write timeouts bound its lifetime), so a stalled client cannot
//! block `/healthz` or `/shutdown`. Memory is bounded: only the most
//! recent [`COMPLETED_RETENTION`] finished batch records are kept (older
//! ones answer `404` after eviction) and at most [`GRAPH_MEMO_CAP`]
//! graphs stay memoized.
//!
//! Shutdown (`POST /shutdown` or [`Daemon::shutdown`]) stops the acceptor,
//! which drops the queue sender; workers drain what was already accepted,
//! see the channel disconnect, and exit — no job is abandoned half-run.

use crate::cached::{CacheStats, CachedPlanner, CellSource};
use crate::error::ServiceError;
use crate::graphsrc::GraphSource;
use crate::http;
use crate::protocol::{
    AuditReply, BatchAccepted, BatchReply, BatchRequest, CellResult, ErrorReply, Health, StatsReply,
};
use crate::store::ResultStore;
use bd_graphs::PortGraph;
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get `503`.
    pub queue_depth: usize,
}

impl ServeConfig {
    /// A config serving `store_dir` on an ephemeral localhost port with
    /// two workers and a queue of 64.
    pub fn ephemeral(store_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: store_dir.into(),
            workers: 2,
            queue_depth: 64,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchState {
    Queued,
    Running,
    Done,
    Failed(String),
}

struct BatchRecord {
    /// The pending request; taken (freed) when a worker starts the batch.
    request: Option<BatchRequest>,
    state: BatchState,
    cells: Vec<CellResult>,
    stats: Option<CacheStats>,
}

/// Completed (done/failed) batch records retained for `GET /batches/:id`;
/// older completed records are evicted so a long-lived daemon's memory
/// stays bounded. In-flight records are never evicted.
pub const COMPLETED_RETENTION: usize = 1024;

/// Distinct graphs memoized at once. Beyond this, a batch's graph is
/// materialized for the batch and dropped afterwards (correct, just not
/// shared) — an `Explicit` source can be megabytes, and the memo key is
/// its full JSON.
pub const GRAPH_MEMO_CAP: usize = 64;

struct State {
    store: ResultStore,
    batches: Mutex<BTreeMap<u64, BatchRecord>>,
    graphs: Mutex<HashMap<String, Arc<PortGraph>>>,
    next_id: AtomicU64,
    running: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    /// HTTP connections currently being handled (each on its own thread).
    connections: AtomicU64,
    workers: usize,
    totals: Mutex<CacheStats>,
}

impl State {
    fn queue_depth(&self) -> u64 {
        // Saturating: a worker can finish (bumping `completed`) before a
        // concurrent `/stats` observes the submission's `submitted` bump.
        self.submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.completed.load(Ordering::Relaxed))
    }

    /// Drop the oldest completed records beyond [`COMPLETED_RETENTION`]
    /// (BTreeMap iterates in id order, so the oldest go first).
    fn evict_completed(&self) {
        let mut batches = self.batches.lock().expect("batches lock");
        let completed: Vec<u64> = batches
            .iter()
            .filter(|(_, r)| matches!(r.state, BatchState::Done | BatchState::Failed(_)))
            .map(|(&id, _)| id)
            .collect();
        if completed.len() > COMPLETED_RETENTION {
            for id in &completed[..completed.len() - COMPLETED_RETENTION] {
                batches.remove(id);
            }
        }
    }
}

/// Decrements the connection counter when a connection thread ends, on
/// every exit path.
struct ConnectionGuard(Arc<State>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown`] (or send `POST /shutdown`) then [`Daemon::join`].
pub struct Daemon {
    local_addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.local_addr)
            .finish()
    }
}

impl Daemon {
    /// Bind, open the store, and spawn the acceptor + worker threads.
    pub fn start(config: ServeConfig) -> Result<Daemon, ServiceError> {
        let store = ResultStore::open(&config.store_dir)?;
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = config.workers.max(1);
        let state = Arc::new(State {
            store,
            batches: Mutex::new(BTreeMap::new()),
            graphs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            running: AtomicBool::new(true),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            workers,
            totals: Mutex::new(CacheStats::default()),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("bd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("bd-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &state, &tx))
                .expect("spawn acceptor")
        };

        Ok(Daemon {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Ask the daemon to stop accepting; queued work still drains.
    pub fn shutdown(&self) {
        self.state.running.store(false, Ordering::SeqCst);
    }

    /// Wait until the daemon has stopped (after [`Daemon::shutdown`] or a
    /// `POST /shutdown`): the acceptor exits, in-flight connections finish
    /// (the `/shutdown` response itself rides one), and every worker
    /// drains.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads are detached; their per-read socket timeouts
        // bound how long this wait can last, with a belt-and-braces cap.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.state.connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, tx: &SyncSender<u64>) {
    while state.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One thread per connection: a slow or stalled client must
                // never block /healthz, /shutdown, or other submissions.
                // Socket timeouts (http::IO_TIMEOUT) bound each thread's
                // lifetime; the guard keeps the live count for join().
                state.connections.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(state);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _guard = ConnectionGuard(Arc::clone(&state));
                    handle_connection(stream, &state, &tx);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here (and each connection thread dropping its clone)
    // disconnects the channel once workers drain it.
}

fn handle_connection(mut stream: TcpStream, state: &Arc<State>, tx: &SyncSender<u64>) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::respond(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let (status, body) = route(&request, state, tx);
    let _ = http::respond(&mut stream, status, &body);
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorReply { error: msg.into() }).expect("error reply serializes")
}

fn route(req: &http::Request, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let health = Health {
                ok: true,
                store_entries: state.store.len(),
            };
            (200, serde_json::to_string(&health).expect("health"))
        }
        ("GET", "/stats") => {
            let counters = state.store.counters();
            let reply = StatsReply {
                store_entries: state.store.len(),
                store_hits: counters.hits,
                store_misses: counters.misses,
                batches_submitted: state.submitted.load(Ordering::Relaxed),
                batches_completed: state.completed.load(Ordering::Relaxed),
                queue_depth: state.queue_depth(),
                workers: state.workers,
                totals: *state.totals.lock().expect("totals lock"),
            };
            (200, serde_json::to_string(&reply).expect("stats"))
        }
        ("GET", "/audit") => audit(state),
        ("POST", "/batches") => submit_batch(&req.body, state, tx),
        ("GET", path) if path.starts_with("/batches/") => batch_status(path, state),
        ("POST", "/shutdown") => {
            state.running.store(false, Ordering::SeqCst);
            (200, "{\"ok\":true}".to_string())
        }
        ("GET" | "POST", _) => (404, error_body(&format!("no route {}", req.path))),
        _ => (
            405,
            error_body(&format!("method {} not allowed", req.method)),
        ),
    }
}

/// `GET /audit`: chain-verify the journal as it sits on disk right now.
/// A verified chain is `200`; a broken one is `409 Conflict` with the same
/// body shape, carrying the failing index; anything else (I/O) is `500`.
fn audit(state: &Arc<State>) -> (u16, String) {
    let reply = match state.store.verify_chain() {
        Ok(a) => AuditReply {
            ok: true,
            entries: a.entries,
            tip: a.tip,
            failing_index: None,
            error: None,
        },
        Err(ServiceError::Tampered { index, msg, .. }) => AuditReply {
            ok: false,
            entries: index - 1,
            tip: String::new(),
            failing_index: Some(index),
            error: Some(msg),
        },
        Err(e) => return (500, error_body(&e.to_string())),
    };
    let status = if reply.ok { 200 } else { 409 };
    (status, serde_json::to_string(&reply).expect("audit reply"))
}

fn submit_batch(body: &str, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    let request: BatchRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("bad batch request: {e}"))),
    };
    if request.specs.is_empty() {
        return (400, error_body("batch has no specs"));
    }
    let cells = request.specs.len();
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    state.batches.lock().expect("batches lock").insert(
        id,
        BatchRecord {
            request: Some(request),
            state: BatchState::Queued,
            cells: Vec::new(),
            stats: None,
        },
    );
    // `submitted` is bumped *before* the job becomes poppable: a fast
    // worker must never increment `completed` past `submitted`.
    state.submitted.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(id) {
        Ok(()) => {
            let reply = BatchAccepted {
                id,
                cells,
                status: "queued".into(),
            };
            (202, serde_json::to_string(&reply).expect("accepted"))
        }
        Err(e) => {
            state.submitted.fetch_sub(1, Ordering::Relaxed);
            state.batches.lock().expect("batches lock").remove(&id);
            let msg = match e {
                TrySendError::Full(_) => "job queue full, resubmit later",
                TrySendError::Disconnected(_) => "daemon is shutting down",
            };
            (503, error_body(msg))
        }
    }
}

fn batch_status(path: &str, state: &Arc<State>) -> (u16, String) {
    let id: u64 = match path["/batches/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return (400, error_body(&format!("bad batch id in {path}"))),
    };
    let batches = state.batches.lock().expect("batches lock");
    let Some(record) = batches.get(&id) else {
        return (404, error_body(&format!("no batch {id}")));
    };
    let (status, error) = match &record.state {
        BatchState::Queued => ("queued", None),
        BatchState::Running => ("running", None),
        BatchState::Done => ("done", None),
        BatchState::Failed(msg) => ("failed", Some(msg.clone())),
    };
    let reply = BatchReply {
        id,
        status: status.into(),
        error,
        cells: record.cells.clone(),
        stats: record.stats,
    };
    (200, serde_json::to_string(&reply).expect("batch reply"))
}

fn worker_loop(state: &Arc<State>, rx: &Arc<Mutex<Receiver<u64>>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("queue lock");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(id) => {
                process_batch(state, id);
                state.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The daemon's graph materialization, memoized by canonical source key so
/// repeated submissions share one `Arc` (and therefore one planner
/// session).
fn graph_for(state: &Arc<State>, source: &GraphSource) -> Result<Arc<PortGraph>, ServiceError> {
    let key = source.cache_key();
    if let Some(g) = state.graphs.lock().expect("graphs lock").get(&key) {
        return Ok(Arc::clone(g));
    }
    // Materialize outside the lock: graph generation can be slow.
    let g = Arc::new(source.materialize()?);
    let mut graphs = state.graphs.lock().expect("graphs lock");
    if graphs.len() >= GRAPH_MEMO_CAP && !graphs.contains_key(&key) {
        // Memo full: serve this batch unmemoized rather than grow without
        // bound (the memo is an optimization, not a correctness need).
        return Ok(g);
    }
    Ok(Arc::clone(graphs.entry(key).or_insert(g)))
}

fn process_batch(state: &Arc<State>, id: u64) {
    let request = {
        let mut batches = state.batches.lock().expect("batches lock");
        let Some(record) = batches.get_mut(&id) else {
            return;
        };
        record.state = BatchState::Running;
        // Take, don't clone: nothing reads the request after this point,
        // and an `Explicit` graph source can be megabytes — retained
        // requests would defeat the record-retention memory bound.
        match record.request.take() {
            Some(request) => request,
            None => return,
        }
    };

    let result = run_request(state, &request);
    {
        let mut batches = state.batches.lock().expect("batches lock");
        let Some(record) = batches.get_mut(&id) else {
            return;
        };
        match result {
            Ok((cells, stats)) => {
                record.cells = cells;
                record.stats = Some(stats);
                record.state = BatchState::Done;
                state.totals.lock().expect("totals lock").merge(&stats);
            }
            Err(e) => record.state = BatchState::Failed(e.to_string()),
        }
    }
    state.evict_completed();
}

fn run_request(
    state: &Arc<State>,
    request: &BatchRequest,
) -> Result<(Vec<CellResult>, CacheStats), ServiceError> {
    let graph = graph_for(state, &request.graph)?;
    let mut planner = CachedPlanner::new(&state.store);
    // Per-cell provenance comes straight from the planner: only a store
    // hit is `cached` (an in-batch duplicate aliases a simulation of this
    // very batch, which is not "answered by the store").
    let sources: Vec<CellSource> = request
        .specs
        .iter()
        .map(|spec| {
            let idx = planner.add(&graph, spec.clone());
            planner.source(idx)
        })
        .collect();
    let (results, stats) = planner.run()?;
    let cells = results
        .into_iter()
        .zip(sources)
        .map(|(result, source)| match result {
            Ok(outcome) => CellResult {
                cached: source == CellSource::Store,
                outcome: Some(outcome),
                error: None,
            },
            Err(e) => CellResult {
                cached: false,
                outcome: None,
                error: Some(e.to_string()),
            },
        })
        .collect();
    Ok((cells, stats))
}
