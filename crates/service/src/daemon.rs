//! The scenario-serving daemon: a `std::net::TcpListener` front end, a
//! bounded job queue, and a worker pool that funnels every batch into the
//! shared store-backed [`CachedPlanner`] path.
//!
//! Life of a batch: `POST /batches` validates the JSON, allocates an id,
//! and `try_send`s the id into the bounded queue (`503` when full — the
//! daemon sheds load instead of buffering unboundedly). A worker pops the
//! id, materializes the graph (memoized by source, capped), runs a
//! [`CachedPlanner`] over the daemon's [`ResultStore`], and parks results
//! and [`CacheStats`] on the batch record. `GET /batches/:id` serves the
//! record at any point in its lifecycle; `GET /stats` aggregates across
//! batches; `GET /metrics` serves the same accounting (plus worker
//! busy-time and per-row throughput histograms) as a Prometheus text
//! exposition (OBSERVABILITY.md documents every metric).
//!
//! All cross-batch accounting lives in one `ServeMetrics` behind one
//! mutex: a worker merges a batch's stats and bumps `completed` in a
//! single critical section, and `/stats` / `/metrics` snapshot in one
//! acquisition — a reader can never observe a torn view (say, a
//! `completed` bump without the totals that came with it).
//!
//! Each accepted connection is handled on its own thread (socket
//! read/write timeouts bound its lifetime), so a stalled client cannot
//! block `/healthz` or `/shutdown`. Memory is bounded: only the most
//! recent [`COMPLETED_RETENTION`] finished batch records are kept (older
//! ones answer `404` after eviction) and at most [`GRAPH_MEMO_CAP`]
//! graphs stay memoized.
//!
//! Shutdown (`POST /shutdown` or [`Daemon::shutdown`]) stops the acceptor,
//! which drops the queue sender; workers drain what was already accepted,
//! see the channel disconnect, and exit — no job is abandoned half-run.

use crate::cached::{CacheStats, CachedPlanner, CellSource};
use crate::error::ServiceError;
use crate::graphsrc::GraphSource;
use crate::http;
use crate::protocol::{
    AuditReply, BatchAccepted, BatchReply, BatchRequest, CellResult, ErrorReply, Health, StatsReply,
};
use crate::store::ResultStore;
use bd_graphs::PortGraph;
use bd_telemetry::prom::{self, Histogram, PromText};
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Out-of-band chain-tip anchor file (`--anchor`); when set, the store
    /// opens with [`ResultStore::open_anchored`] so `/audit` also detects
    /// line-boundary tail truncation.
    pub anchor: Option<PathBuf>,
}

impl ServeConfig {
    /// A config serving `store_dir` on an ephemeral localhost port with
    /// two workers and a queue of 64.
    pub fn ephemeral(store_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: store_dir.into(),
            workers: 2,
            queue_depth: 64,
            anchor: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchState {
    Queued,
    Running,
    Done,
    Failed(String),
}

struct BatchRecord {
    /// The pending request; taken (freed) when a worker starts the batch.
    request: Option<BatchRequest>,
    state: BatchState,
    cells: Vec<CellResult>,
    stats: Option<CacheStats>,
}

/// Completed (done/failed) batch records retained for `GET /batches/:id`;
/// older completed records are evicted so a long-lived daemon's memory
/// stays bounded. In-flight records are never evicted.
pub const COMPLETED_RETENTION: usize = 1024;

/// Distinct graphs memoized at once. Beyond this, a batch's graph is
/// materialized for the batch and dropped afterwards (correct, just not
/// shared) — an `Explicit` source can be megabytes, and the memo key is
/// its full JSON.
pub const GRAPH_MEMO_CAP: usize = 64;

/// Upper bounds of the per-row `bd_row_rounds_per_sec` histogram, in
/// simulated rounds per second (the `+Inf` bucket is implicit). Fixed at
/// compile time: hand-rolled exposition has no dynamic bucketing, and
/// fixed bounds keep scrapes comparable across daemon restarts.
const RPS_BUCKETS: &[u64] = &[
    1_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000,
];

/// Every cross-batch counter the daemon accumulates, behind one mutex so
/// updates (merge totals + bump `completed`, one worker critical section)
/// and reads (`/stats`, `/metrics`) are atomic snapshots — the torn-read
/// fix: no reader can see `completed` without the totals merged with it.
#[derive(Default)]
struct ServeMetrics {
    /// Batches accepted (bumped before the job becomes poppable).
    submitted: u64,
    /// Batches finished, done or failed.
    completed: u64,
    /// Aggregated per-batch cache accounting.
    totals: CacheStats,
    /// Wall-clock workers spent inside batches, microseconds.
    busy_micros: u64,
    /// Simulated-cell throughput per Table 1 row, rounds per second.
    row_rps: BTreeMap<String, Histogram>,
}

impl ServeMetrics {
    fn queue_depth(&self) -> u64 {
        // Saturating as a defensive measure only: under the single lock
        // `completed` can never outrun `submitted`.
        self.submitted.saturating_sub(self.completed)
    }
}

struct State {
    store: ResultStore,
    batches: Mutex<BTreeMap<u64, BatchRecord>>,
    graphs: Mutex<HashMap<String, Arc<PortGraph>>>,
    next_id: AtomicU64,
    running: AtomicBool,
    /// HTTP connections currently being handled (each on its own thread).
    connections: AtomicU64,
    workers: usize,
    metrics: Mutex<ServeMetrics>,
}

impl State {
    /// Drop the oldest completed records beyond [`COMPLETED_RETENTION`]
    /// (BTreeMap iterates in id order, so the oldest go first).
    fn evict_completed(&self) {
        let mut batches = self.batches.lock().expect("batches lock");
        let completed: Vec<u64> = batches
            .iter()
            .filter(|(_, r)| matches!(r.state, BatchState::Done | BatchState::Failed(_)))
            .map(|(&id, _)| id)
            .collect();
        if completed.len() > COMPLETED_RETENTION {
            for id in &completed[..completed.len() - COMPLETED_RETENTION] {
                batches.remove(id);
            }
        }
    }
}

/// Decrements the connection counter when a connection thread ends, on
/// every exit path.
struct ConnectionGuard(Arc<State>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown`] (or send `POST /shutdown`) then [`Daemon::join`].
pub struct Daemon {
    local_addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.local_addr)
            .finish()
    }
}

impl Daemon {
    /// Bind, open the store, and spawn the acceptor + worker threads.
    pub fn start(config: ServeConfig) -> Result<Daemon, ServiceError> {
        let store = match &config.anchor {
            Some(anchor) => ResultStore::open_anchored(&config.store_dir, anchor.clone())?,
            None => ResultStore::open(&config.store_dir)?,
        };
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = config.workers.max(1);
        let state = Arc::new(State {
            store,
            batches: Mutex::new(BTreeMap::new()),
            graphs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            running: AtomicBool::new(true),
            connections: AtomicU64::new(0),
            workers,
            metrics: Mutex::new(ServeMetrics::default()),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("bd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("bd-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &state, &tx))
                .expect("spawn acceptor")
        };

        Ok(Daemon {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Ask the daemon to stop accepting; queued work still drains.
    pub fn shutdown(&self) {
        self.state.running.store(false, Ordering::SeqCst);
    }

    /// Wait until the daemon has stopped (after [`Daemon::shutdown`] or a
    /// `POST /shutdown`): the acceptor exits, in-flight connections finish
    /// (the `/shutdown` response itself rides one), and every worker
    /// drains.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads are detached; their per-read socket timeouts
        // bound how long this wait can last, with a belt-and-braces cap.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.state.connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, tx: &SyncSender<u64>) {
    while state.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One thread per connection: a slow or stalled client must
                // never block /healthz, /shutdown, or other submissions.
                // Socket timeouts (http::IO_TIMEOUT) bound each thread's
                // lifetime; the guard keeps the live count for join().
                state.connections.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(state);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _guard = ConnectionGuard(Arc::clone(&state));
                    handle_connection(stream, &state, &tx);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here (and each connection thread dropping its clone)
    // disconnects the channel once workers drain it.
}

fn handle_connection(mut stream: TcpStream, state: &Arc<State>, tx: &SyncSender<u64>) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::respond(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    // `/metrics` is the one non-JSON endpoint (Prometheus text
    // exposition), so it bypasses the JSON responder `route` feeds.
    if (request.method.as_str(), request.path.as_str()) == ("GET", "/metrics") {
        let body = render_metrics(state);
        let _ = http::respond_with(&mut stream, 200, prom::CONTENT_TYPE, &body);
        return;
    }
    let (status, body) = route(&request, state, tx);
    let _ = http::respond(&mut stream, status, &body);
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorReply { error: msg.into() }).expect("error reply serializes")
}

fn route(req: &http::Request, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let health = Health {
                ok: true,
                store_entries: state.store.len(),
            };
            (200, serde_json::to_string(&health).expect("health"))
        }
        ("GET", "/stats") => {
            let counters = state.store.counters();
            // One acquisition for all batch-level counters: submitted,
            // completed, queue depth, and totals come from the same
            // instant, never a torn mix.
            let reply = {
                let m = state.metrics.lock().expect("metrics lock");
                StatsReply {
                    store_entries: state.store.len(),
                    store_hits: counters.hits,
                    store_misses: counters.misses,
                    batches_submitted: m.submitted,
                    batches_completed: m.completed,
                    queue_depth: m.queue_depth(),
                    workers: state.workers,
                    totals: m.totals,
                }
            };
            (200, serde_json::to_string(&reply).expect("stats"))
        }
        ("GET", "/audit") => audit(state),
        ("POST", "/batches") => submit_batch(&req.body, state, tx),
        ("GET", path) if path.starts_with("/batches/") => batch_status(path, state),
        ("POST", "/shutdown") => {
            state.running.store(false, Ordering::SeqCst);
            (200, "{\"ok\":true}".to_string())
        }
        ("GET" | "POST", _) => (404, error_body(&format!("no route {}", req.path))),
        _ => (
            405,
            error_body(&format!("method {} not allowed", req.method)),
        ),
    }
}

/// `GET /audit`: chain-verify the journal as it sits on disk right now.
/// A verified chain is `200`; a broken one is `409 Conflict` with the same
/// body shape, carrying the failing index; anything else (I/O) is `500`.
fn audit(state: &Arc<State>) -> (u16, String) {
    let reply = match state.store.verify_chain() {
        Ok(a) => AuditReply {
            ok: true,
            entries: a.entries,
            tip: a.tip,
            failing_index: None,
            error: None,
        },
        Err(ServiceError::Tampered { index, msg, .. }) => AuditReply {
            ok: false,
            entries: index - 1,
            tip: String::new(),
            failing_index: Some(index),
            error: Some(msg),
        },
        Err(e) => return (500, error_body(&e.to_string())),
    };
    let status = if reply.ok { 200 } else { 409 };
    (status, serde_json::to_string(&reply).expect("audit reply"))
}

fn submit_batch(body: &str, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    let request: BatchRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("bad batch request: {e}"))),
    };
    if request.specs.is_empty() {
        return (400, error_body("batch has no specs"));
    }
    let cells = request.specs.len();
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    state.batches.lock().expect("batches lock").insert(
        id,
        BatchRecord {
            request: Some(request),
            state: BatchState::Queued,
            cells: Vec::new(),
            stats: None,
        },
    );
    // `submitted` is bumped *before* the job becomes poppable: a fast
    // worker must never increment `completed` past `submitted`.
    state.metrics.lock().expect("metrics lock").submitted += 1;
    match tx.try_send(id) {
        Ok(()) => {
            let reply = BatchAccepted {
                id,
                cells,
                status: "queued".into(),
            };
            (202, serde_json::to_string(&reply).expect("accepted"))
        }
        Err(e) => {
            state.metrics.lock().expect("metrics lock").submitted -= 1;
            state.batches.lock().expect("batches lock").remove(&id);
            let msg = match e {
                TrySendError::Full(_) => "job queue full, resubmit later",
                TrySendError::Disconnected(_) => "daemon is shutting down",
            };
            (503, error_body(msg))
        }
    }
}

fn batch_status(path: &str, state: &Arc<State>) -> (u16, String) {
    let id: u64 = match path["/batches/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return (400, error_body(&format!("bad batch id in {path}"))),
    };
    let batches = state.batches.lock().expect("batches lock");
    let Some(record) = batches.get(&id) else {
        return (404, error_body(&format!("no batch {id}")));
    };
    let (status, error) = match &record.state {
        BatchState::Queued => ("queued", None),
        BatchState::Running => ("running", None),
        BatchState::Done => ("done", None),
        BatchState::Failed(msg) => ("failed", Some(msg.clone())),
    };
    let reply = BatchReply {
        id,
        status: status.into(),
        error,
        cells: record.cells.clone(),
        stats: record.stats,
    };
    (200, serde_json::to_string(&reply).expect("batch reply"))
}

fn worker_loop(state: &Arc<State>, rx: &Arc<Mutex<Receiver<u64>>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("queue lock");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(id) => {
                let t0 = std::time::Instant::now();
                let done = process_batch(state, id);
                // One critical section for the whole completion: totals,
                // throughput observations, busy time, and the `completed`
                // bump land together, so `/stats` and `/metrics` readers
                // always see them as a unit.
                let mut m = state.metrics.lock().expect("metrics lock");
                m.busy_micros += t0.elapsed().as_micros() as u64;
                if let Some((stats, observations)) = done {
                    m.totals.merge(&stats);
                    for (row, rps) in observations {
                        m.row_rps
                            .entry(row)
                            .or_insert_with(|| Histogram::new(RPS_BUCKETS))
                            .observe(rps);
                    }
                }
                m.completed += 1;
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The daemon's graph materialization, memoized by canonical source key so
/// repeated submissions share one `Arc` (and therefore one planner
/// session).
fn graph_for(state: &Arc<State>, source: &GraphSource) -> Result<Arc<PortGraph>, ServiceError> {
    let key = source.cache_key();
    if let Some(g) = state.graphs.lock().expect("graphs lock").get(&key) {
        return Ok(Arc::clone(g));
    }
    // Materialize outside the lock: graph generation can be slow.
    let g = Arc::new(source.materialize()?);
    let mut graphs = state.graphs.lock().expect("graphs lock");
    if graphs.len() >= GRAPH_MEMO_CAP && !graphs.contains_key(&key) {
        // Memo full: serve this batch unmemoized rather than grow without
        // bound (the memo is an optimization, not a correctness need).
        return Ok(g);
    }
    Ok(Arc::clone(graphs.entry(key).or_insert(g)))
}

/// Run one popped batch to completion. Returns the batch's stats plus
/// per-row `(row name, rounds/sec)` throughput observations for its
/// *simulated* cells when the batch finished, `None` when it failed or
/// its record vanished — the caller folds either into [`ServeMetrics`].
fn process_batch(state: &Arc<State>, id: u64) -> Option<(CacheStats, Vec<(String, u64)>)> {
    let request = {
        let mut batches = state.batches.lock().expect("batches lock");
        let record = batches.get_mut(&id)?;
        record.state = BatchState::Running;
        // Take, don't clone: nothing reads the request after this point,
        // and an `Explicit` graph source can be megabytes — retained
        // requests would defeat the record-retention memory bound.
        record.request.take()?
    };

    let result = run_request(state, &request);
    let done = {
        let mut batches = state.batches.lock().expect("batches lock");
        let record = batches.get_mut(&id)?;
        match result {
            Ok((cells, stats, observations)) => {
                record.cells = cells;
                record.stats = Some(stats);
                record.state = BatchState::Done;
                Some((stats, observations))
            }
            Err(e) => {
                record.state = BatchState::Failed(e.to_string());
                None
            }
        }
    };
    state.evict_completed();
    done
}

fn run_request(
    state: &Arc<State>,
    request: &BatchRequest,
) -> Result<(Vec<CellResult>, CacheStats, Vec<(String, u64)>), ServiceError> {
    let graph = graph_for(state, &request.graph)?;
    let mut planner = CachedPlanner::new(&state.store);
    // Per-cell provenance comes straight from the planner: only a store
    // hit is `cached` (an in-batch duplicate aliases a simulation of this
    // very batch, which is not "answered by the store").
    let sources: Vec<CellSource> = request
        .specs
        .iter()
        .map(|spec| {
            let idx = planner.add(&graph, spec.clone());
            planner.source(idx)
        })
        .collect();
    let (results, stats) = planner.run()?;
    // Throughput observations for `/metrics`: only cells this batch
    // actually simulated (hits and aliases replay stored work at store
    // speed, which would poison an engine-throughput histogram).
    let observations: Vec<(String, u64)> = request
        .specs
        .iter()
        .zip(&results)
        .zip(&sources)
        .filter(|&((_, result), source)| *source == CellSource::Simulation && result.is_ok())
        .map(|((spec, result), _)| {
            let metrics = &result.as_ref().expect("filtered Ok").metrics;
            let rps = metrics.rounds.saturating_mul(1_000_000) / metrics.elapsed_micros.max(1);
            (spec.algo.row().name().to_string(), rps)
        })
        .collect();
    let cells = results
        .into_iter()
        .zip(sources)
        .map(|(result, source)| match result {
            Ok(outcome) => CellResult {
                cached: source == CellSource::Store,
                outcome: Some(outcome),
                error: None,
            },
            Err(e) => CellResult {
                cached: false,
                outcome: None,
                error: Some(e.to_string()),
            },
        })
        .collect();
    Ok((cells, stats, observations))
}

/// Render the full Prometheus text exposition for `GET /metrics`. Every
/// family here has a row in OBSERVABILITY.md — keep the two in sync.
fn render_metrics(state: &Arc<State>) -> String {
    let store = state.store.counters();
    let entries = state.store.len();
    let mut text = PromText::new();
    text.gauge(
        "bd_store_entries",
        "Outcomes currently in the result store index.",
        entries as u64,
    )
    .counter(
        "bd_store_hits_total",
        "Store lookups answered from the index.",
        store.hits,
    )
    .counter(
        "bd_store_misses_total",
        "Store lookups that found nothing.",
        store.misses,
    )
    .counter(
        "bd_store_appended_total",
        "Journal entries appended by this process.",
        store.appended,
    )
    .counter(
        "bd_store_recovered_total",
        "Torn journal tails dropped at open.",
        store.recovered,
    )
    .gauge(
        "bd_connections",
        "HTTP connections currently being handled.",
        state.connections.load(Ordering::SeqCst),
    )
    .gauge(
        "bd_workers",
        "Worker threads draining the job queue.",
        state.workers as u64,
    );
    let m = state.metrics.lock().expect("metrics lock");
    text.counter(
        "bd_batches_submitted_total",
        "Batches accepted onto the queue.",
        m.submitted,
    )
    .counter(
        "bd_batches_completed_total",
        "Batches finished (done or failed).",
        m.completed,
    )
    .gauge(
        "bd_queue_depth",
        "Batches accepted but not yet finished.",
        m.queue_depth(),
    )
    .counter(
        "bd_worker_busy_micros_total",
        "Wall-clock microseconds workers spent inside batches.",
        m.busy_micros,
    )
    .counter(
        "bd_cells_hit_total",
        "Cells answered from the store.",
        m.totals.hits,
    )
    .counter(
        "bd_cells_miss_total",
        "Cells that had to be simulated.",
        m.totals.misses,
    )
    .counter(
        "bd_cells_error_total",
        "Cells that errored (never stored).",
        m.totals.errors,
    )
    .counter(
        "bd_cells_deduped_total",
        "Cells aliased to an identical cell of the same batch.",
        m.totals.deduped,
    )
    .counter(
        "bd_rounds_simulated_total",
        "Engine-stepped rounds across simulated cells.",
        m.totals.rounds_simulated,
    )
    .counter(
        "bd_rounds_saved_total",
        "Measured rounds the store answered without simulating.",
        m.totals.rounds_saved,
    )
    .counter(
        "bd_elapsed_simulated_micros_total",
        "Wall-clock microseconds spent simulating cells.",
        m.totals.elapsed_simulated_micros,
    );
    if !m.row_rps.is_empty() {
        text.header(
            "bd_row_rounds_per_sec",
            "histogram",
            "Simulated-cell throughput per Table 1 row, rounds per second.",
        );
        for (row, hist) in &m.row_rps {
            text.histogram_series("bd_row_rounds_per_sec", &[("row", row)], hist);
        }
    }
    text.finish()
}
