//! The scenario-serving daemon: a `std::net::TcpListener` front end, a
//! bounded job queue, and a worker pool that funnels every batch into the
//! shared store-backed [`CachedPlanner`] path.
//!
//! Life of a batch: `POST /batches` validates the JSON, allocates an id,
//! and `try_send`s the id into the bounded queue (`503` when full — the
//! daemon sheds load instead of buffering unboundedly). A worker pops the
//! id, materializes the graph (memoized by source, capped), runs a
//! [`CachedPlanner`] over the daemon's [`ResultStore`], and parks results
//! and [`CacheStats`] on the batch record. `GET /batches/:id` serves the
//! record at any point in its lifecycle; `GET /stats` aggregates across
//! batches; `GET /metrics` serves the same accounting (plus worker
//! busy-time and per-row throughput histograms) as a Prometheus text
//! exposition (OBSERVABILITY.md documents every metric).
//!
//! All cross-batch accounting lives in one `ServeMetrics` behind one
//! mutex: a worker merges a batch's stats and bumps `completed` in a
//! single critical section, and `/stats` / `/metrics` snapshot in one
//! acquisition — a reader can never observe a torn view (say, a
//! `completed` bump without the totals that came with it).
//!
//! Each accepted connection is handled on its own thread, bounded by
//! [`http::Deadlines`]: a per-read idle timeout *and* a whole-request
//! total deadline, so neither a stalled client nor a slow-loris trickle
//! can hold a thread hostage or block `/healthz` and `/shutdown`. Memory
//! is bounded: only the most recent [`COMPLETED_RETENTION`] finished
//! batch records are kept (older ones answer `404` after eviction) and at
//! most [`GRAPH_MEMO_CAP`] graphs stay memoized.
//!
//! **Graceful degradation** (RESILIENCE.md): the store is an
//! availability liability the compute path does not share, so it is never
//! allowed to take the daemon down. If the journal fails verification at
//! startup, or a write to it fails at runtime, the daemon flips to
//! **degraded compute-only mode**: batches still simulate (nothing is
//! cached or persisted, every cell reports `cached: false`), `/healthz`
//! and `/stats` carry `degraded: true`, and `/metrics` exposes
//! `bd_degraded` / `bd_store_available`. Degradation is one-way for the
//! process — a journal that failed once is evidence, and only an operator
//! (restart after repair) should clear it.
//!
//! **Worker panic isolation**: a panicking batch (a bug — or the chaos
//! drill) marks that batch `failed` and is counted in
//! `bd_worker_panics_total`; the worker thread survives and keeps
//! draining the queue. The daemon's locks recover from poisoning, at the
//! documented cost that a batch interrupted mid-accounting may leave its
//! counters partially merged — availability over perfectly-consistent
//! metrics, for metrics only.
//!
//! Shutdown (`POST /shutdown` or [`Daemon::shutdown`]) stops the acceptor,
//! which drops the queue sender; workers drain what was already accepted,
//! see the channel disconnect, and exit — no job is abandoned half-run.

use crate::cached::{CacheStats, CachedPlanner, CellSource};
use crate::error::ServiceError;
use crate::graphsrc::GraphSource;
use crate::http;
use crate::protocol::{
    AuditReply, BatchAccepted, BatchReply, BatchRequest, CellResult, ErrorReply, Health, StatsReply,
};
use crate::store::{ResultStore, StoreOptions};
use bd_chaos::{Chaos, WorkerFault};
use bd_dispersion::canon::Fnv64;
use bd_dispersion::BatchPlanner;
use bd_graphs::PortGraph;
use bd_telemetry::log as tlog;
use bd_telemetry::prom::{self, Histogram, PromText};
use bd_telemetry::spans;
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Out-of-band chain-tip anchor file (`--anchor`); when set, the store
    /// opens anchored so `/audit` also detects line-boundary tail
    /// truncation.
    pub anchor: Option<PathBuf>,
    /// Per-request I/O deadlines for every connection.
    pub deadlines: http::Deadlines,
    /// Fault-injection handle, threaded into both the store's write path
    /// and the worker loop ([`Chaos::off`] outside drills; `--chaos-plan`
    /// on the binary).
    pub chaos: Chaos,
}

impl ServeConfig {
    /// A config serving `store_dir` on an ephemeral localhost port with
    /// two workers and a queue of 64.
    pub fn ephemeral(store_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: store_dir.into(),
            workers: 2,
            queue_depth: 64,
            anchor: None,
            deadlines: http::Deadlines::default(),
            chaos: Chaos::off(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchState {
    Queued,
    Running,
    Done,
    Failed(String),
}

struct BatchRecord {
    /// The pending request; taken (freed) when a worker starts the batch.
    request: Option<BatchRequest>,
    state: BatchState,
    cells: Vec<CellResult>,
    stats: Option<CacheStats>,
    /// The request's trace id: client-submitted, or derived from the raw
    /// body when the submission carried an empty one. Echoed on every
    /// reply and threaded through span args and log events.
    request_id: String,
    /// When the batch entered the queue; the worker's pop time minus this
    /// is the `queue_wait` stage.
    queued_at: Instant,
}

/// Completed (done/failed) batch records retained for `GET /batches/:id`;
/// older completed records are evicted so a long-lived daemon's memory
/// stays bounded. In-flight records are never evicted.
pub const COMPLETED_RETENTION: usize = 1024;

/// Distinct graphs memoized at once. Beyond this, a batch's graph is
/// materialized for the batch and dropped afterwards (correct, just not
/// shared) — an `Explicit` source can be megabytes, and the memo key is
/// its full JSON.
pub const GRAPH_MEMO_CAP: usize = 64;

/// Upper bounds of the per-row `bd_row_rounds_per_sec` histogram, in
/// simulated rounds per second (the `+Inf` bucket is implicit). Fixed at
/// compile time: hand-rolled exposition has no dynamic bucketing, and
/// fixed bounds keep scrapes comparable across daemon restarts.
const RPS_BUCKETS: &[u64] = &[
    1_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000,
];

/// Upper bounds of the `bd_request_duration_micros{stage=...}` stage
/// histograms, in microseconds. 100µs to 30s: the low buckets resolve the
/// socket/parse stages, the high ones the simulate stage of a large cold
/// batch.
const STAGE_BUCKETS: &[u64] = &[
    100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 30_000_000,
];

/// The request lifecycle's five stage histograms, one series per stage of
/// `bd_request_duration_micros`. Always rendered — a scrape of an idle
/// daemon shows all five families' series at zero, so dashboards and the
/// doc-sync test never depend on traffic having happened.
struct StageHistograms {
    /// Reading and parsing one HTTP request off the socket.
    read_parse: Histogram,
    /// Accepted-to-popped time of a batch in the bounded queue.
    queue_wait: Histogram,
    /// Wall-clock of the batch's simulate fan-out (cold cells only).
    simulate: Histogram,
    /// Writing fresh outcomes back to the store.
    store_write: Histogram,
    /// Serializing and writing one response to the socket.
    respond: Histogram,
}

impl Default for StageHistograms {
    fn default() -> StageHistograms {
        StageHistograms {
            read_parse: Histogram::new(STAGE_BUCKETS),
            queue_wait: Histogram::new(STAGE_BUCKETS),
            simulate: Histogram::new(STAGE_BUCKETS),
            store_write: Histogram::new(STAGE_BUCKETS),
            respond: Histogram::new(STAGE_BUCKETS),
        }
    }
}

impl StageHistograms {
    /// Stage name → histogram, in the order the exposition renders.
    fn series(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("read_parse", &self.read_parse),
            ("queue_wait", &self.queue_wait),
            ("simulate", &self.simulate),
            ("store_write", &self.store_write),
            ("respond", &self.respond),
        ]
    }
}

/// Lock acquisition that survives poisoning: a panicking worker (isolated
/// by `catch_unwind`) must not turn every later `/stats` or submission
/// into a second panic. The data under these locks is accounting and
/// batch records — worst case after a mid-section panic is one batch's
/// counters partially merged, which the module docs accept by name.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Every cross-batch counter the daemon accumulates, behind one mutex so
/// updates (merge totals + bump `completed`, one worker critical section)
/// and reads (`/stats`, `/metrics`) are atomic snapshots — the torn-read
/// fix: no reader can see `completed` without the totals merged with it.
#[derive(Default)]
struct ServeMetrics {
    /// Batches accepted (bumped before the job becomes poppable).
    submitted: u64,
    /// Batches finished, done or failed.
    completed: u64,
    /// Aggregated per-batch cache accounting.
    totals: CacheStats,
    /// Wall-clock workers spent inside batches, microseconds.
    busy_micros: u64,
    /// Batches whose worker panicked (batch failed, worker survived).
    worker_panics: u64,
    /// Requests whose read failed before routing: malformed HTTP, torn
    /// connections, and elapsed deadlines.
    protocol_errors: u64,
    /// Submissions bounced with `503` because the queue was full (or
    /// the daemon was draining).
    shed: u64,
    /// Simulated-cell throughput per Table 1 row, rounds per second.
    row_rps: BTreeMap<String, Histogram>,
    /// Per-stage request latency histograms
    /// (`bd_request_duration_micros{stage=...}`).
    stages: StageHistograms,
    /// Total microseconds batches spent queued
    /// (`bd_queue_wait_micros_total`).
    queue_wait_micros: u64,
}

impl ServeMetrics {
    fn queue_depth(&self) -> u64 {
        // Saturating as a defensive measure only: under the single lock
        // `completed` can never outrun `submitted`.
        self.submitted.saturating_sub(self.completed)
    }
}

struct State {
    /// `None` when the journal failed at startup — the daemon starts
    /// degraded instead of refusing to serve compute.
    store: Option<ResultStore>,
    /// `Some(reason)` once the daemon has entered degraded compute-only
    /// mode. One-way for the process lifetime.
    degraded: Mutex<Option<String>>,
    batches: Mutex<BTreeMap<u64, BatchRecord>>,
    graphs: Mutex<HashMap<String, Arc<PortGraph>>>,
    next_id: AtomicU64,
    running: AtomicBool,
    /// HTTP connections currently being handled (each on its own thread).
    connections: AtomicU64,
    workers: usize,
    deadlines: http::Deadlines,
    chaos: Chaos,
    metrics: Mutex<ServeMetrics>,
}

impl State {
    fn is_degraded(&self) -> bool {
        lock_recover(&self.degraded).is_some()
    }

    /// Enter degraded compute-only mode (first reason wins).
    fn degrade(&self, reason: String) {
        let mut d = lock_recover(&self.degraded);
        if d.is_none() {
            eprintln!("bd-serve: entering degraded compute-only mode: {reason}");
            tlog::error("degraded", &[("reason", &reason)]);
            *d = Some(reason);
        }
    }

    /// The store, but only while the daemon still trusts it.
    fn healthy_store(&self) -> Option<&ResultStore> {
        if self.is_degraded() {
            None
        } else {
            self.store.as_ref()
        }
    }

    /// Drop the oldest completed records beyond [`COMPLETED_RETENTION`]
    /// (BTreeMap iterates in id order, so the oldest go first).
    fn evict_completed(&self) {
        let mut batches = lock_recover(&self.batches);
        let completed: Vec<u64> = batches
            .iter()
            .filter(|(_, r)| matches!(r.state, BatchState::Done | BatchState::Failed(_)))
            .map(|(&id, _)| id)
            .collect();
        if completed.len() > COMPLETED_RETENTION {
            for id in &completed[..completed.len() - COMPLETED_RETENTION] {
                batches.remove(id);
            }
        }
    }
}

/// Decrements the connection counter when a connection thread ends, on
/// every exit path.
struct ConnectionGuard(Arc<State>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown`] (or send `POST /shutdown`) then [`Daemon::join`].
pub struct Daemon {
    local_addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.local_addr)
            .finish()
    }
}

impl Daemon {
    /// Bind, open the store, and spawn the acceptor + worker threads.
    ///
    /// A store that fails to open — tampered journal, anchor mismatch,
    /// unreadable directory — does **not** fail the start: the daemon
    /// comes up in degraded compute-only mode with the failure as the
    /// reason, because a broken cache must not deny service the compute
    /// path can still provide. Only the socket bind can fail a start.
    pub fn start(config: ServeConfig) -> Result<Daemon, ServiceError> {
        let mut degraded = None;
        let options = StoreOptions::from_env().with_chaos(config.chaos.clone());
        let options = match &config.anchor {
            Some(anchor) => options.with_anchor(anchor.clone()),
            None => options,
        };
        let store = match ResultStore::open_with(&config.store_dir, options) {
            Ok(store) => Some(store),
            Err(e) => {
                degraded = Some(format!("store failed to open: {e}"));
                None
            }
        };
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = config.workers.max(1);
        let state = Arc::new(State {
            store,
            degraded: Mutex::new(degraded.clone()),
            batches: Mutex::new(BTreeMap::new()),
            graphs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            running: AtomicBool::new(true),
            connections: AtomicU64::new(0),
            workers,
            deadlines: config.deadlines,
            chaos: config.chaos,
            metrics: Mutex::new(ServeMetrics::default()),
        });
        if let Some(reason) = degraded {
            eprintln!("bd-serve: starting in degraded compute-only mode: {reason}");
        }

        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("bd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("bd-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &state, &tx))
                .expect("spawn acceptor")
        };

        Ok(Daemon {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the daemon is in degraded compute-only mode.
    pub fn is_degraded(&self) -> bool {
        self.state.is_degraded()
    }

    /// Ask the daemon to stop accepting; queued work still drains.
    pub fn shutdown(&self) {
        self.state.running.store(false, Ordering::SeqCst);
    }

    /// Wait until the daemon has stopped (after [`Daemon::shutdown`] or a
    /// `POST /shutdown`): the acceptor exits, in-flight connections finish
    /// (the `/shutdown` response itself rides one), and every worker
    /// drains.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads are detached; their per-read socket timeouts
        // bound how long this wait can last, with a belt-and-braces cap.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.state.connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, tx: &SyncSender<u64>) {
    while state.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One thread per connection: a slow or stalled client must
                // never block /healthz, /shutdown, or other submissions.
                // Per-request deadlines (state.deadlines) bound each
                // thread's lifetime; the guard keeps the live count for
                // join().
                state.connections.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(state);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let _guard = ConnectionGuard(Arc::clone(&state));
                    handle_connection(stream, &state, &tx);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here (and each connection thread dropping its clone)
    // disconnects the channel once workers drain it.
}

fn handle_connection(mut stream: TcpStream, state: &Arc<State>, tx: &SyncSender<u64>) {
    let read_started = Instant::now();
    let request = match http::read_request_with(&mut stream, state.deadlines) {
        Ok(r) => r,
        Err(e) => {
            // Garbage, torn connections, and deadline expiries all land
            // here: count them (the socket-fault drill's observable),
            // answer 400 best-effort, drop the connection. Nothing a peer
            // sends reaches a panic path.
            lock_recover(&state.metrics).protocol_errors += 1;
            tlog::warn("protocol_error", &[("error", &e.to_string())]);
            let _ = http::respond(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let read_micros = read_started.elapsed().as_micros() as u64;
    // `/metrics` is the one non-JSON endpoint (Prometheus text
    // exposition), so it bypasses the JSON responder `route` feeds.
    let respond_started;
    if (request.method.as_str(), request.path.as_str()) == ("GET", "/metrics") {
        let body = render_metrics(state);
        respond_started = Instant::now();
        let _ = http::respond_with(&mut stream, 200, prom::CONTENT_TYPE, &body);
    } else {
        let (status, body) = route(&request, state, tx);
        respond_started = Instant::now();
        let _ = http::respond(&mut stream, status, &body);
    }
    let respond_micros = respond_started.elapsed().as_micros() as u64;
    // One acquisition for both connection-side stage observations.
    let mut m = lock_recover(&state.metrics);
    m.stages.read_parse.observe(read_micros);
    m.stages.respond.observe(respond_micros);
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorReply { error: msg.into() }).expect("error reply serializes")
}

fn route(req: &http::Request, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let health = Health {
                ok: true,
                degraded: state.is_degraded(),
                store_entries: state.store.as_ref().map_or(0, ResultStore::len),
            };
            (200, serde_json::to_string(&health).expect("health"))
        }
        ("GET", "/stats") => {
            let counters = state.store.as_ref().map(ResultStore::counters);
            // One acquisition for all batch-level counters: submitted,
            // completed, queue depth, and totals come from the same
            // instant, never a torn mix.
            let reply = {
                let m = lock_recover(&state.metrics);
                StatsReply {
                    store_entries: state.store.as_ref().map_or(0, ResultStore::len),
                    store_hits: counters.map_or(0, |c| c.hits),
                    store_misses: counters.map_or(0, |c| c.misses),
                    batches_submitted: m.submitted,
                    batches_completed: m.completed,
                    queue_depth: m.queue_depth(),
                    workers: state.workers,
                    degraded: state.is_degraded(),
                    worker_panics: m.worker_panics,
                    totals: m.totals,
                }
            };
            (200, serde_json::to_string(&reply).expect("stats"))
        }
        ("GET", "/audit") => audit(state),
        ("POST", "/batches") => submit_batch(&req.body, state, tx),
        ("GET", path) if path.starts_with("/batches/") => batch_status(path, state),
        ("POST", "/shutdown") => {
            state.running.store(false, Ordering::SeqCst);
            (200, "{\"ok\":true}".to_string())
        }
        ("GET" | "POST", _) => (404, error_body(&format!("no route {}", req.path))),
        _ => (
            405,
            error_body(&format!("method {} not allowed", req.method)),
        ),
    }
}

/// `GET /audit`: chain-verify the journal as it sits on disk right now.
/// A verified chain is `200`; a broken one is `409 Conflict` with the same
/// body shape, carrying the failing index; anything else (I/O) is `500`.
/// A daemon without a store (degraded from startup) answers `503`.
fn audit(state: &Arc<State>) -> (u16, String) {
    let Some(store) = state.store.as_ref() else {
        return (
            503,
            error_body("store unavailable: daemon is degraded compute-only"),
        );
    };
    let reply = match store.verify_chain() {
        Ok(a) => AuditReply {
            ok: true,
            entries: a.entries,
            tip: a.tip,
            failing_index: None,
            error: None,
        },
        Err(ServiceError::Tampered { index, msg, .. }) => AuditReply {
            ok: false,
            entries: index - 1,
            tip: String::new(),
            failing_index: Some(index),
            error: Some(msg),
        },
        Err(e) => return (500, error_body(&e.to_string())),
    };
    let status = if reply.ok { 200 } else { 409 };
    (status, serde_json::to_string(&reply).expect("audit reply"))
}

/// The daemon-side fallback trace id for a submission whose `request_id`
/// field came in empty: a content hash of the raw body bytes — still
/// deterministic (the same body gets the same id on every submission, rule
/// 3), just not portable across equivalent JSON spellings the way the
/// client's digest-derived id is.
fn fallback_request_id(body: &str) -> String {
    let mut fold = Fnv64::new();
    fold.write(body.as_bytes());
    format!("{:016x}", fold.finish())
}

fn submit_batch(body: &str, state: &Arc<State>, tx: &SyncSender<u64>) -> (u16, String) {
    let request: BatchRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("bad batch request: {e}"))),
    };
    if request.specs.is_empty() {
        return (400, error_body("batch has no specs"));
    }
    let cells = request.specs.len();
    let request_id = if request.request_id.is_empty() {
        fallback_request_id(body)
    } else {
        request.request_id.clone()
    };
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    lock_recover(&state.batches).insert(
        id,
        BatchRecord {
            request: Some(request),
            state: BatchState::Queued,
            cells: Vec::new(),
            stats: None,
            request_id: request_id.clone(),
            queued_at: Instant::now(),
        },
    );
    // `submitted` is bumped *before* the job becomes poppable: a fast
    // worker must never increment `completed` past `submitted`.
    lock_recover(&state.metrics).submitted += 1;
    match tx.try_send(id) {
        Ok(()) => {
            if tlog::enabled(tlog::Level::Info) {
                tlog::info(
                    "batch_accepted",
                    &[
                        ("req", &request_id),
                        ("batch", &id.to_string()),
                        ("cells", &cells.to_string()),
                    ],
                );
            }
            let reply = BatchAccepted {
                id,
                cells,
                status: "queued".into(),
                request_id,
            };
            (202, serde_json::to_string(&reply).expect("accepted"))
        }
        Err(e) => {
            let mut m = lock_recover(&state.metrics);
            m.submitted -= 1;
            m.shed += 1;
            drop(m);
            lock_recover(&state.batches).remove(&id);
            let msg = match e {
                TrySendError::Full(_) => "job queue full, resubmit later",
                TrySendError::Disconnected(_) => "daemon is shutting down",
            };
            tlog::warn("queue_shed", &[("req", &request_id), ("reason", msg)]);
            (503, error_body(msg))
        }
    }
}

fn batch_status(path: &str, state: &Arc<State>) -> (u16, String) {
    let id: u64 = match path["/batches/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return (400, error_body(&format!("bad batch id in {path}"))),
    };
    let batches = lock_recover(&state.batches);
    let Some(record) = batches.get(&id) else {
        return (404, error_body(&format!("no batch {id}")));
    };
    let (status, error) = match &record.state {
        BatchState::Queued => ("queued", None),
        BatchState::Running => ("running", None),
        BatchState::Done => ("done", None),
        BatchState::Failed(msg) => ("failed", Some(msg.clone())),
    };
    let reply = BatchReply {
        id,
        status: status.into(),
        error,
        cells: record.cells.clone(),
        stats: record.stats,
        request_id: record.request_id.clone(),
    };
    (200, serde_json::to_string(&reply).expect("batch reply"))
}

fn worker_loop(state: &Arc<State>, rx: &Arc<Mutex<Receiver<u64>>>) {
    loop {
        let job = {
            let rx = lock_recover(rx);
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(id) => {
                let t0 = std::time::Instant::now();
                // Panic isolation: a batch that panics (a bug, or the
                // chaos drill's injected WorkerFault) fails *that batch*;
                // the worker thread survives and keeps draining.
                let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    process_batch(state, id)
                }));
                // One critical section for the whole completion: totals,
                // throughput and stage observations, busy time, and the
                // `completed` bump land together, so `/stats` and
                // `/metrics` readers always see them as a unit.
                match done {
                    Ok((queue_wait, done)) => {
                        let mut m = lock_recover(&state.metrics);
                        m.busy_micros += t0.elapsed().as_micros() as u64;
                        if let Some(wait) = queue_wait {
                            m.queue_wait_micros += wait;
                            m.stages.queue_wait.observe(wait);
                        }
                        if let Some((stats, observations)) = done {
                            m.stages.simulate.observe(stats.simulate_wall_micros);
                            m.stages.store_write.observe(stats.store_write_micros);
                            m.totals.merge(&stats);
                            for (row, rps) in observations {
                                m.row_rps
                                    .entry(row)
                                    .or_insert_with(|| Histogram::new(RPS_BUCKETS))
                                    .observe(rps);
                            }
                        }
                        m.completed += 1;
                    }
                    Err(_) => {
                        let mut batches = lock_recover(&state.batches);
                        let mut request_id = String::new();
                        if let Some(record) = batches.get_mut(&id) {
                            request_id = record.request_id.clone();
                            if !matches!(record.state, BatchState::Done | BatchState::Failed(_)) {
                                record.state = BatchState::Failed(
                                    "worker panicked while running this batch (daemon still \
                                     serving; see bd_worker_panics_total)"
                                        .into(),
                                );
                            }
                        }
                        drop(batches);
                        if tlog::enabled(tlog::Level::Error) {
                            tlog::error(
                                "worker_panic",
                                &[("req", &request_id), ("batch", &id.to_string())],
                            );
                        }
                        let mut m = lock_recover(&state.metrics);
                        m.busy_micros += t0.elapsed().as_micros() as u64;
                        m.worker_panics += 1;
                        m.completed += 1;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The daemon's graph materialization, memoized by canonical source key so
/// repeated submissions share one `Arc` (and therefore one planner
/// session).
fn graph_for(state: &Arc<State>, source: &GraphSource) -> Result<Arc<PortGraph>, ServiceError> {
    let key = source.cache_key();
    if let Some(g) = lock_recover(&state.graphs).get(&key) {
        return Ok(Arc::clone(g));
    }
    // Materialize outside the lock: graph generation can be slow.
    let g = Arc::new(source.materialize()?);
    let mut graphs = lock_recover(&state.graphs);
    if graphs.len() >= GRAPH_MEMO_CAP && !graphs.contains_key(&key) {
        // Memo full: serve this batch unmemoized rather than grow without
        // bound (the memo is an optimization, not a correctness need).
        return Ok(g);
    }
    Ok(Arc::clone(graphs.entry(key).or_insert(g)))
}

/// Run one popped batch to completion. Returns the batch's queue wait
/// (known whenever its record was found) plus its stats and per-row
/// `(row name, rounds/sec)` throughput observations for its *simulated*
/// cells when the batch finished — the caller folds everything into
/// [`ServeMetrics`] in one critical section.
#[allow(clippy::type_complexity)]
fn process_batch(
    state: &Arc<State>,
    id: u64,
) -> (Option<u64>, Option<(CacheStats, Vec<(String, u64)>)>) {
    let (request, request_id, queue_wait) = {
        let mut batches = lock_recover(&state.batches);
        let Some(record) = batches.get_mut(&id) else {
            return (None, None);
        };
        record.state = BatchState::Running;
        let wait = record.queued_at.elapsed().as_micros() as u64;
        // Take, don't clone: nothing reads the request after this point,
        // and an `Explicit` graph source can be megabytes — retained
        // requests would defeat the record-retention memory bound.
        let Some(request) = record.request.take() else {
            return (None, None);
        };
        (request, record.request_id.clone(), wait)
    };
    if tlog::enabled(tlog::Level::Debug) {
        tlog::debug(
            "batch_start",
            &[("req", &request_id), ("batch", &id.to_string())],
        );
    }
    // Drill injection point: a seed-chosen batch simply panics here, and
    // the isolation in `worker_loop` has to contain it. No lock is held.
    if state.chaos.worker_batch() == WorkerFault::Panic {
        panic!("chaos: injected worker panic");
    }

    // The request level of the span tree: one span per batch carrying the
    // trace id, enclosing the planner's batch → cell → phase spans — a
    // Chrome trace of a busy daemon separates into per-request lifelines.
    let result = {
        let _request_span = spans::span_with(
            "request",
            "request",
            vec![("req", request_id.clone()), ("batch", id.to_string())],
        );
        run_request(state, &request, &request_id)
    };
    let done = {
        let mut batches = lock_recover(&state.batches);
        let Some(record) = batches.get_mut(&id) else {
            return (Some(queue_wait), None);
        };
        match result {
            Ok((cells, stats, observations)) => {
                record.cells = cells;
                record.stats = Some(stats);
                record.state = BatchState::Done;
                if tlog::enabled(tlog::Level::Info) {
                    tlog::info(
                        "batch_done",
                        &[
                            ("req", &request_id),
                            ("batch", &id.to_string()),
                            ("hits", &stats.hits.to_string()),
                            ("misses", &stats.misses.to_string()),
                            ("deduped", &stats.deduped.to_string()),
                            ("errors", &stats.errors.to_string()),
                        ],
                    );
                }
                Some((stats, observations))
            }
            Err(e) => {
                if tlog::enabled(tlog::Level::Error) {
                    tlog::error(
                        "batch_failed",
                        &[
                            ("req", &request_id),
                            ("batch", &id.to_string()),
                            ("error", &e.to_string()),
                        ],
                    );
                }
                record.state = BatchState::Failed(e.to_string());
                None
            }
        }
    };
    state.evict_completed();
    (Some(queue_wait), done)
}

fn run_request(
    state: &Arc<State>,
    request: &BatchRequest,
    request_id: &str,
) -> Result<(Vec<CellResult>, CacheStats, Vec<(String, u64)>), ServiceError> {
    let graph = graph_for(state, &request.graph)?;
    if let Some(store) = state.healthy_store() {
        match run_cached(store, &graph, request, request_id) {
            Ok(done) => return Ok(done),
            Err(e) => {
                // The only error `CachedPlanner::run` surfaces is a
                // store-write failure: degrade and fall through — the
                // batch (and every later one) is answered compute-only
                // rather than failed. Re-running the whole batch after a
                // mid-batch write failure re-simulates cells the store
                // already answered; a one-time cost, paid exactly once
                // per process, for never returning a half-persisted
                // batch.
                state.degrade(format!("store write path failed: {e}"));
            }
        }
    }
    Ok(run_compute_only(&graph, request, request_id))
}

/// The store-backed path: consult, simulate misses, write back.
fn run_cached(
    store: &ResultStore,
    graph: &Arc<PortGraph>,
    request: &BatchRequest,
    request_id: &str,
) -> Result<(Vec<CellResult>, CacheStats, Vec<(String, u64)>), ServiceError> {
    let mut planner = CachedPlanner::new(store);
    planner.tag("req", request_id.to_string());
    // Per-cell provenance comes straight from the planner: only a store
    // hit is `cached` (an in-batch duplicate aliases a simulation of this
    // very batch, which is not "answered by the store").
    let sources: Vec<CellSource> = request
        .specs
        .iter()
        .map(|spec| {
            let idx = planner.add(graph, spec.clone());
            planner.source(idx)
        })
        .collect();
    let (results, stats) = planner.run()?;
    // Throughput observations for `/metrics`: only cells this batch
    // actually simulated (hits and aliases replay stored work at store
    // speed, which would poison an engine-throughput histogram).
    let observations: Vec<(String, u64)> = request
        .specs
        .iter()
        .zip(&results)
        .zip(&sources)
        .filter(|&((_, result), source)| *source == CellSource::Simulation && result.is_ok())
        .map(|((spec, result), _)| {
            let metrics = &result.as_ref().expect("filtered Ok").metrics;
            let rps = metrics.rounds.saturating_mul(1_000_000) / metrics.elapsed_micros.max(1);
            (spec.algo.row().name().to_string(), rps)
        })
        .collect();
    let cells = results
        .into_iter()
        .zip(sources)
        .map(|(result, source)| match result {
            Ok(outcome) => CellResult {
                cached: source == CellSource::Store,
                outcome: Some(outcome),
                error: None,
            },
            Err(e) => CellResult {
                cached: false,
                outcome: None,
                error: Some(e.to_string()),
            },
        })
        .collect();
    Ok((cells, stats, observations))
}

/// The degraded path: simulate everything, consult and persist nothing.
/// Infallible by construction — per-cell scenario errors stay per-cell —
/// so a daemon whose store is gone can still never fail a batch for
/// store reasons.
fn run_compute_only(
    graph: &Arc<PortGraph>,
    request: &BatchRequest,
    request_id: &str,
) -> (Vec<CellResult>, CacheStats, Vec<(String, u64)>) {
    let mut planner = BatchPlanner::new();
    planner.tag("req", request_id.to_string());
    for spec in &request.specs {
        planner.add(graph, spec.clone());
    }
    let simulate_started = Instant::now();
    let results = planner.run();
    let mut stats = CacheStats {
        simulate_wall_micros: simulate_started.elapsed().as_micros() as u64,
        ..CacheStats::default()
    };
    let mut observations = Vec::new();
    let cells = request
        .specs
        .iter()
        .zip(results)
        .map(|(spec, result)| match result {
            Ok(outcome) => {
                stats.misses += 1;
                stats.rounds_simulated += outcome.metrics.rounds - outcome.metrics.rounds_skipped;
                stats.elapsed_simulated_micros += outcome.metrics.elapsed_micros;
                let rps = outcome.metrics.rounds.saturating_mul(1_000_000)
                    / outcome.metrics.elapsed_micros.max(1);
                observations.push((spec.algo.row().name().to_string(), rps));
                CellResult {
                    cached: false,
                    outcome: Some(outcome),
                    error: None,
                }
            }
            Err(e) => {
                stats.errors += 1;
                CellResult {
                    cached: false,
                    outcome: None,
                    error: Some(e.to_string()),
                }
            }
        })
        .collect();
    (cells, stats, observations)
}

/// Render the full Prometheus text exposition for `GET /metrics`. Every
/// family here has a row in OBSERVABILITY.md — keep the two in sync.
fn render_metrics(state: &Arc<State>) -> String {
    let store = state.store.as_ref().map(ResultStore::counters);
    let entries = state.store.as_ref().map_or(0, ResultStore::len);
    let mut text = PromText::new();
    text.gauge(
        "bd_store_entries",
        "Outcomes currently in the result store index.",
        entries as u64,
    )
    .gauge(
        "bd_store_available",
        "1 while the daemon trusts and uses its result store.",
        u64::from(state.healthy_store().is_some()),
    )
    .gauge(
        "bd_degraded",
        "1 once the daemon has entered degraded compute-only mode.",
        u64::from(state.is_degraded()),
    )
    .counter(
        "bd_store_hits_total",
        "Store lookups answered from the index.",
        store.map_or(0, |c| c.hits),
    )
    .counter(
        "bd_store_misses_total",
        "Store lookups that found nothing.",
        store.map_or(0, |c| c.misses),
    )
    .counter(
        "bd_store_appended_total",
        "Journal entries appended by this process.",
        store.map_or(0, |c| c.appended),
    )
    .counter(
        "bd_store_recovered_total",
        "Torn journal tails dropped at open.",
        store.map_or(0, |c| c.recovered),
    )
    .counter(
        "bd_store_write_failures_total",
        "Journal appends that failed (the daemon degrades on the first).",
        store.map_or(0, |c| c.write_failures),
    )
    .gauge(
        "bd_connections",
        "HTTP connections currently being handled.",
        state.connections.load(Ordering::SeqCst),
    )
    .gauge(
        "bd_workers",
        "Worker threads draining the job queue.",
        state.workers as u64,
    );
    let m = lock_recover(&state.metrics);
    text.counter(
        "bd_batches_submitted_total",
        "Batches accepted onto the queue.",
        m.submitted,
    )
    .counter(
        "bd_batches_completed_total",
        "Batches finished (done or failed).",
        m.completed,
    )
    .gauge(
        "bd_queue_depth",
        "Batches accepted but not yet finished.",
        m.queue_depth(),
    )
    .counter(
        "bd_queue_shed_total",
        "Submissions bounced with 503 because the queue was full.",
        m.shed,
    )
    .counter(
        "bd_http_protocol_errors_total",
        "Requests dropped before routing: malformed, torn, or timed out.",
        m.protocol_errors,
    )
    .counter(
        "bd_worker_panics_total",
        "Batches whose worker panicked (batch failed, worker survived).",
        m.worker_panics,
    )
    .counter(
        "bd_worker_busy_micros_total",
        "Wall-clock microseconds workers spent inside batches.",
        m.busy_micros,
    )
    .counter(
        "bd_cells_hit_total",
        "Cells answered from the store.",
        m.totals.hits,
    )
    .counter(
        "bd_cells_miss_total",
        "Cells that had to be simulated.",
        m.totals.misses,
    )
    .counter(
        "bd_cells_error_total",
        "Cells that errored (never stored).",
        m.totals.errors,
    )
    .counter(
        "bd_cells_deduped_total",
        "Cells aliased to an identical cell of the same batch.",
        m.totals.deduped,
    )
    .counter(
        "bd_rounds_simulated_total",
        "Engine-stepped rounds across simulated cells.",
        m.totals.rounds_simulated,
    )
    .counter(
        "bd_rounds_saved_total",
        "Measured rounds the store answered without simulating.",
        m.totals.rounds_saved,
    )
    .counter(
        "bd_elapsed_simulated_micros_total",
        "Wall-clock microseconds spent simulating cells.",
        m.totals.elapsed_simulated_micros,
    )
    .counter(
        "bd_queue_wait_micros_total",
        "Total microseconds batches spent queued before a worker took them.",
        m.queue_wait_micros,
    );
    // The request lifecycle histograms render unconditionally (all five
    // stage series, even with zero observations): dashboards and the
    // doc-sync smoke must see the family on an idle daemon.
    text.header(
        "bd_request_duration_micros",
        "histogram",
        "Per-stage request latency: read_parse, queue_wait, simulate, store_write, respond.",
    );
    for (stage, hist) in m.stages.series() {
        text.histogram_series("bd_request_duration_micros", &[("stage", stage)], hist);
    }
    if !m.row_rps.is_empty() {
        text.header(
            "bd_row_rounds_per_sec",
            "histogram",
            "Simulated-cell throughput per Table 1 row, rounds per second.",
        );
        for (row, hist) in &m.row_rps {
            text.histogram_series("bd_row_rounds_per_sec", &[("row", row)], hist);
        }
    }
    if state.chaos.enabled() {
        let c = state.chaos.counters();
        text.counter(
            "bd_chaos_torn_writes_total",
            "Injected journal appends torn at a seed-chosen byte.",
            c.torn_writes,
        )
        .counter(
            "bd_chaos_fsync_losses_total",
            "Injected appends lost with the page cache.",
            c.fsync_losses,
        )
        .counter(
            "bd_chaos_anchor_losses_total",
            "Injected anchor rewrites that never happened.",
            c.anchor_losses,
        )
        .counter(
            "bd_chaos_worker_panics_total",
            "Injected worker panics.",
            c.worker_panics,
        )
        .counter(
            "bd_chaos_suppressed_writes_total",
            "Writes suppressed after an injected kill latched.",
            c.suppressed_writes,
        );
    }
    text.finish()
}
