//! The daemon's wire contracts: every request/response body as a typed,
//! serde-able struct shared by the server and the client (tests speak the
//! same types the daemon serves).

use crate::cached::CacheStats;
use crate::graphsrc::GraphSource;
use bd_dispersion::canon::{scenario_digest_with, Fnv64, GraphCanon};
use bd_dispersion::runner::{Outcome, ScenarioSpec};
use bd_graphs::PortGraph;
use bd_runtime::EngineConfig;
use serde::{Deserialize, Serialize};

/// `POST /batches` request body: one graph source plus the specs to run
/// on it. Mixed-graph workloads submit multiple batches — the store and
/// the worker pool are shared across all of them anyway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The graph every spec in this batch runs on.
    pub graph: GraphSource,
    /// The scenario cells.
    pub specs: Vec<ScenarioSpec>,
    /// Client-chosen trace id, echoed in [`BatchAccepted`] and
    /// [`BatchReply`] and threaded through the daemon's span tree and
    /// log events. [`Client::submit`](crate::Client::submit) stamps the
    /// deterministic digest-derived id ([`request_id_for`]) when this is
    /// empty; the daemon derives a fallback from the raw body when a bare
    /// curl omits it. Same batch content ⇒ same id (rule 3: no
    /// wall-clock).
    pub request_id: String,
}

impl BatchRequest {
    /// A request for `specs` on `graph`, stamped with the deterministic
    /// content-derived request id.
    pub fn new(graph: GraphSource, specs: Vec<ScenarioSpec>) -> BatchRequest {
        let mut request = BatchRequest {
            graph,
            specs,
            request_id: String::new(),
        };
        if let Some(id) = request.computed_request_id() {
            request.request_id = id;
        }
        request
    }

    /// The content-derived request id for this batch: a 16-hex-digit FNV
    /// fold over every cell's [`SpecDigest`](bd_dispersion::canon::SpecDigest)
    /// under the default engine config. `None` when the graph source
    /// cannot be materialized (the daemon will fail the batch with the
    /// real error; the id falls back to a body hash).
    pub fn computed_request_id(&self) -> Option<String> {
        let graph = self.graph.materialize().ok()?;
        Some(request_id_for(&graph, &self.specs))
    }
}

/// The deterministic request id for `specs` on an already-materialized
/// graph — the same fold [`BatchRequest::computed_request_id`] performs.
pub fn request_id_for(graph: &PortGraph, specs: &[ScenarioSpec]) -> String {
    let canon = GraphCanon::new(graph);
    let config = EngineConfig::default();
    let mut fold = Fnv64::new();
    for spec in specs {
        let digest = scenario_digest_with(&canon, spec, &config);
        fold.write(&digest.0.to_le_bytes());
        fold.write(&digest.1.to_le_bytes());
    }
    format!("{:016x}", fold.finish())
}

/// `POST /batches` success response (`202 Accepted`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchAccepted {
    /// Handle for `GET /batches/:id`.
    pub id: u64,
    /// Number of cells accepted.
    pub cells: usize,
    /// Always `"queued"` at acceptance time.
    pub status: String,
    /// The request's trace id (client-submitted, or daemon-derived when
    /// the submission carried none).
    pub request_id: String,
}

/// One cell of a finished batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Whether the store answered this cell without simulating.
    pub cached: bool,
    /// The run outcome — the exact stored bytes on a hit.
    pub outcome: Option<Outcome>,
    /// Scenario error, when the cell could not run.
    pub error: Option<String>,
}

/// `GET /batches/:id` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReply {
    /// The batch handle.
    pub id: u64,
    /// `"queued"`, `"running"`, `"done"`, or `"failed"`.
    pub status: String,
    /// Batch-level failure (graph source errors), when `status == "failed"`.
    pub error: Option<String>,
    /// Per-cell results, present when `status == "done"`.
    pub cells: Vec<CellResult>,
    /// Cache accounting for this batch, present when `status == "done"`.
    pub stats: Option<CacheStats>,
    /// The request's trace id — the same value [`BatchAccepted`] echoed,
    /// so a client can correlate a reply with the daemon's trace export
    /// and log stream.
    pub request_id: String,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Health {
    /// Liveness.
    pub ok: bool,
    /// Whether the daemon is in degraded compute-only mode (store
    /// unavailable or distrusted; simulations still served, nothing
    /// persisted).
    pub degraded: bool,
    /// Outcomes currently stored (0 when the store is unavailable).
    pub store_entries: usize,
}

/// `GET /stats` response: the daemon's cumulative accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Outcomes currently stored.
    pub store_entries: usize,
    /// Store lookups answered from the index (lifetime of this process).
    pub store_hits: u64,
    /// Store lookups that missed.
    pub store_misses: u64,
    /// Batches accepted.
    pub batches_submitted: u64,
    /// Batches finished (done or failed).
    pub batches_completed: u64,
    /// Jobs accepted but not yet finished.
    pub queue_depth: u64,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Whether the daemon is in degraded compute-only mode.
    pub degraded: bool,
    /// Batches whose worker panicked (the batch failed; the worker and
    /// the daemon survived).
    pub worker_panics: u64,
    /// Aggregated per-batch cache accounting.
    pub totals: CacheStats,
}

/// `GET /audit` response: the result of a full hash-chain verification of
/// the daemon's journal. Served with `200` when the chain verifies and
/// `409 Conflict` when it does not (same body shape, so clients always get
/// the failing index).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReply {
    /// Whether the whole journal chain verified.
    pub ok: bool,
    /// Entries whose chain verified (on failure: entries *before* the
    /// first bad one).
    pub entries: usize,
    /// Chain digest of the last verified entry — anchor this externally
    /// to defend against whole-suffix rewrites the chain itself cannot
    /// detect.
    pub tip: String,
    /// 1-based index of the first entry that breaks the chain, when
    /// `ok == false`.
    pub failing_index: Option<usize>,
    /// What broke, when `ok == false`.
    pub error: Option<String>,
}

/// Error body every non-2xx response carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable reason.
    pub error: String,
}
