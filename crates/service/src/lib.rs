//! # bd-service
//!
//! The serving layer: a **content-addressed, tamper-evident result
//! store**, a **cache-aware batch planner**, and a **scenario-serving HTTP
//! daemon** over `bd_dispersion::BatchPlanner`. Every consumer used to
//! re-simulate identical `(graph, spec)` cells from scratch and nothing
//! survived process exit; this crate makes repeated heavy traffic cheap —
//! a cell is simulated once, stored forever, and replayed
//! byte-identically, with a hash chain that makes silent edits to the
//! stored history detectable.
//!
//! Three layers, runtime below, contracts + service above:
//!
//! * [`store::ResultStore`] — append-only, hash-chained JSONL journal +
//!   in-memory index, keyed by `bd_dispersion::canon::SpecDigest`;
//! * [`cached::CachedPlanner`] — partitions a batch into stored vs to-run
//!   cells, simulates only the misses (cost-ordered, multi-graph), writes
//!   back, returns insertion-order results with [`cached::CacheStats`];
//! * [`daemon::Daemon`] + [`client::Client`] — a hand-rolled
//!   `std::net` HTTP/1.1 JSON API (`bd-serve` bin) with a bounded job
//!   queue and a worker pool.
//!
//! ## Store format
//!
//! A store directory holds one file, `results.jsonl`. Each line is a
//! complete JSON object:
//!
//! ```json
//! {"body": {"digest": "64f9c1…32 hex…", "spec": {…}, "outcome": {…},
//!           "env": {"code_version": "0.1.0", "engine": "bd-runtime", "format": "bdsc1"},
//!           "prev": "…chain digest of the previous line…"},
//!  "chain": "…digest of this body…"}
//! ```
//!
//! The inner digest is the content address of *what was run* — graph
//! adjacency, scenario spec, engine knobs — two independent FNV-1a-64
//! passes over the canonical `bdsd1` byte stream (see
//! `bd_dispersion::canon` for the exact layout). `chain` commits to the
//! body's exact bytes (domain tag `bdsc1`), and each body's `prev` names
//! the previous line's `chain`, so every entry transitively commits to the
//! whole journal before it — in-place edits, reorders, and
//! truncate-then-append splices all break a link and are reported with the
//! failing entry's index ([`store::ResultStore::verify_chain`], served as
//! `GET /audit`). Appends are flushed per entry; on reopen the journal is
//! replayed with truncated-tail recovery (a half-written final line is
//! dropped, interior damage refuses to open). Lookups never touch disk.
//! VERIFICATION.md spells out what the chain does and does not prove.
//!
//! ## HTTP API
//!
//! | Method & path      | Body                | Reply                                         |
//! |--------------------|---------------------|-----------------------------------------------|
//! | `POST /batches`    | [`protocol::BatchRequest`] | `202` [`protocol::BatchAccepted`], `503` queue full |
//! | `GET /batches/:id` | —                   | [`protocol::BatchReply`] (status, cells, stats) |
//! | `GET /healthz`     | —                   | [`protocol::Health`]                          |
//! | `GET /stats`       | —                   | [`protocol::StatsReply`] (cache hits, rounds simulated/saved, queue depth) |
//! | `GET /metrics`     | —                   | Prometheus text exposition (`text/plain; version=0.0.4`): store/queue/worker counters, per-row throughput histograms, and per-stage request-latency histograms; see OBSERVABILITY.md |
//! | `GET /audit`       | —                   | [`protocol::AuditReply`]: `200` verified chain, `409` tampered (with failing index) |
//! | `POST /shutdown`   | —                   | `{"ok":true}`, then the daemon drains and exits |
//!
//! Example transcript against `bd-serve --addr 127.0.0.1:7171 --store /tmp/bd`:
//!
//! ```text
//! $ curl -s http://127.0.0.1:7171/healthz
//! {"ok":true,"degraded":false,"store_entries":0}
//!
//! $ curl -s -X POST http://127.0.0.1:7171/batches -d '{
//!     "graph": {"BenchEr": {"n": 9, "seed": 1000}},
//!     "specs": [{"algo":"GatheredThirdTh4","num_robots":9,"num_byzantine":1,
//!                "adversary":"TokenHijacker","placement":"Random",
//!                "starts":{"Gathered":0},"seed":1000,"allow_overload":false}],
//!     "request_id": ""}'
//! {"id":1,"cells":1,"status":"queued","request_id":"8b1f20c4d1e6a973"}
//!
//! $ curl -s http://127.0.0.1:7171/batches/1   # first run: simulated
//! {"id":1,"status":"done","error":null,"cells":[{"cached":false,"outcome":{…}}],
//!  "stats":{"hits":0,"misses":1,"errors":0,"rounds_simulated":812,…},
//!  "request_id":"8b1f20c4d1e6a973"}
//!
//! $ curl -s -X POST http://127.0.0.1:7171/batches -d '…same body…' \
//!     && sleep 0.1 && curl -s http://127.0.0.1:7171/batches/2
//! {"id":2,"status":"done","error":null,"cells":[{"cached":true,"outcome":{…}}],
//!  "stats":{"hits":1,"misses":0,"errors":0,"rounds_simulated":0,"rounds_saved":2515,…},
//!  "request_id":"8b1f20c4d1e6a973"}
//!
//! $ curl -s http://127.0.0.1:7171/stats
//! {"store_entries":1,"store_hits":1,"store_misses":1,"batches_submitted":2,
//!  "batches_completed":2,"queue_depth":0,"workers":2,"totals":{…}}
//!
//! $ curl -s -X POST http://127.0.0.1:7171/shutdown
//! {"ok":true}
//! ```
//!
//! The same cells submitted through `bd-bench`'s `table1 --store DIR`
//! path share the store with the daemon: graph sources materialize through
//! the same `asymmetric_gnp(n, seed)` pure function the sweeps use, so the
//! digests coincide wherever the cell runs.
//!
//! ## Request tracing
//!
//! Every batch carries a `request_id`: [`client::Client::submit`] stamps
//! an empty one with the deterministic digest-derived id
//! ([`protocol::request_id_for`] — same content, same id, never
//! wall-clock), and the daemon derives a body-hash fallback for bare
//! submissions. The id is echoed on `202` and on every
//! `GET /batches/:id`, threaded into the span tree as the `request` span's
//! `req` argument (exported via `bd-serve --trace-out FILE`), attached to
//! every structured log event (`--log FILE|stderr`,
//! `bd_telemetry::log`), and the five request lifecycle stages land in
//! `bd_request_duration_micros{stage=...}` on `/metrics`. OBSERVABILITY.md
//! § "Request tracing and logs" is the full contract.
//!
//! ## Resilience (RESILIENCE.md)
//!
//! The serving path is hardened against the failure modes the chaos drill
//! (`bd-bench --bin chaos`) injects:
//!
//! * every request runs under [`http::Deadlines`] — a per-read idle
//!   timeout plus a whole-request total deadline (slow-loris bound), with
//!   stalls surfacing as the typed [`ServiceError::Timeout`];
//! * [`client::Client`] carries connect/read deadlines by default and can
//!   retry transport failures with capped exponential backoff
//!   ([`client::ClientConfig`]) — safe because every request is
//!   idempotent by `SpecDigest`;
//! * a store that fails verification or becomes unwritable flips the
//!   daemon into **degraded compute-only mode** instead of taking it
//!   down (`/healthz` and `/stats` carry `degraded`, `/metrics` exposes
//!   `bd_degraded`/`bd_store_available`);
//! * a panicking batch fails *that batch*; the worker and the daemon
//!   survive (`bd_worker_panics_total`);
//! * with `BD_STORE_KEY` set ([`store::StoreKey`]), every journal record
//!   carries a keyed MAC, closing the forged-but-chain-consistent splice
//!   the bare hash chain cannot see;
//! * `bd-chaos` fault-injection points in the store's write path compile
//!   to a single `Option` check when disabled, and the drill's kill →
//!   restart → verify loop pins crash recovery end to end.

pub mod cached;
pub mod client;
pub mod daemon;
pub mod error;
pub mod graphsrc;
pub mod http;
pub mod protocol;
pub mod store;

pub use cached::{CacheStats, CachedPlanner, CellSource};
pub use client::{Client, ClientConfig};
pub use daemon::{Daemon, ServeConfig};
pub use error::ServiceError;
pub use graphsrc::GraphSource;
pub use http::Deadlines;
pub use store::{
    ChainAudit, EnvContract, ResultStore, StoreKey, StoreOptions, GENESIS_TIP, STORE_KEY_ENV,
};
