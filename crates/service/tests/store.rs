//! ResultStore persistence: reload fidelity, truncated-tail crash
//! recovery, interior-damage refusal, and counter accounting.

use bd_dispersion::adversaries::AdversaryKind;
use bd_dispersion::canon::scenario_digest;
use bd_dispersion::runner::{Algorithm, Outcome, ScenarioSpec};
use bd_dispersion::Session;
use bd_graphs::generators::asymmetric_gnp;
use bd_graphs::PortGraph;
use bd_runtime::EngineConfig;
use bd_service::{ResultStore, ServiceError};
use std::io::Write;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bd-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cells(graph: &PortGraph, count: u64) -> Vec<(ScenarioSpec, Outcome)> {
    let session = Session::new(graph.clone());
    (0..count)
        .map(|seed| {
            let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, graph, 0)
                .with_byzantine(1, AdversaryKind::Squatter)
                .with_seed(seed);
            let out = session.run(&spec).unwrap();
            (spec, out)
        })
        .collect()
}

#[test]
fn reloaded_store_serves_byte_identical_outcomes() {
    let dir = tmpdir("reload");
    let graph = asymmetric_gnp(9, 1000).unwrap();
    let cells = run_cells(&graph, 3);
    let cfg = EngineConfig::default();

    {
        let store = ResultStore::open(&dir).unwrap();
        for (spec, out) in &cells {
            let fresh = store
                .put(scenario_digest(&graph, spec, &cfg), spec, out)
                .unwrap();
            assert!(fresh);
        }
        assert_eq!(store.len(), 3);
        // Idempotence: re-putting is a no-op.
        let (spec, out) = &cells[0];
        assert!(!store
            .put(scenario_digest(&graph, spec, &cfg), spec, out)
            .unwrap());
        assert_eq!(store.counters().appended, 3);
    }

    // A brand-new process: reload from disk, serve the identical bytes.
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 3);
    assert_eq!(store.counters().recovered, 0);
    for (spec, out) in &cells {
        let got = store.get(&scenario_digest(&graph, spec, &cfg)).unwrap();
        assert_eq!(&got, out);
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(out).unwrap(),
            "byte-identical serialization after a disk round trip"
        );
    }
    assert_eq!(store.counters().hits, 3);
    assert!(store
        .get(&scenario_digest(
            &graph,
            &cells[0].0.clone().with_seed(77),
            &cfg
        ))
        .is_none());
    assert_eq!(store.counters().misses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_is_recovered_and_journal_stays_appendable() {
    let dir = tmpdir("crash");
    let graph = asymmetric_gnp(9, 1000).unwrap();
    let cells = run_cells(&graph, 3);
    let cfg = EngineConfig::default();
    {
        let store = ResultStore::open(&dir).unwrap();
        for (spec, out) in &cells[..2] {
            store
                .put(scenario_digest(&graph, spec, &cfg), spec, out)
                .unwrap();
        }
    }
    // Simulate a crash mid-append: a half-written trailing line.
    let journal = dir.join(bd_service::store::JOURNAL);
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(b"{\"digest\":\"0000").unwrap();
    }

    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 2, "both complete entries survive");
    assert_eq!(store.counters().recovered, 1, "the torn tail is dropped");
    // The journal was truncated to the good prefix: appends keep working
    // and the next reopen sees a clean file.
    let (spec, out) = &cells[2];
    store
        .put(scenario_digest(&graph, spec, &cfg), spec, out)
        .unwrap();
    drop(store);
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 3);
    assert_eq!(store.counters().recovered, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interior_damage_refuses_to_open() {
    let dir = tmpdir("interior");
    let graph = asymmetric_gnp(9, 1000).unwrap();
    let cells = run_cells(&graph, 2);
    let cfg = EngineConfig::default();
    {
        let store = ResultStore::open(&dir).unwrap();
        for (spec, out) in &cells {
            store
                .put(scenario_digest(&graph, spec, &cfg), spec, out)
                .unwrap();
        }
    }
    // Damage the FIRST line: that is not a crash signature, it is
    // corruption, and silently dropping stored results would be worse than
    // failing loudly.
    let journal = dir.join(bd_service::store::JOURNAL);
    let text = std::fs::read_to_string(&journal).unwrap();
    let damaged = format!("garbage not json\n{}", text.split_once('\n').unwrap().1);
    std::fs::write(&journal, damaged).unwrap();

    match ResultStore::open(&dir) {
        Err(ServiceError::Corrupt { line, .. }) => assert_eq!(line, 1),
        other => panic!("expected Corrupt error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_missing_stores_open_clean() {
    let dir = tmpdir("empty");
    let store = ResultStore::open(&dir).unwrap();
    assert!(store.is_empty());
    assert_eq!(store.counters(), Default::default());
    let _ = std::fs::remove_dir_all(&dir);
}
