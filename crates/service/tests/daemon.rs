//! In-process daemon integration: the full request lifecycle over real
//! sockets, and the acceptance observable — a second identical submission
//! is served entirely from the store, zero rounds simulated.

use bd_dispersion::adversaries::AdversaryKind;
use bd_dispersion::runner::{Algorithm, ScenarioSpec};
use bd_graphs::generators::asymmetric_gnp;
use bd_service::protocol::BatchRequest;
use bd_service::{Client, Daemon, GraphSource, ServeConfig, ServiceError};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bd-daemon-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const WAIT: Duration = Duration::from_secs(120);

fn quick_request() -> BatchRequest {
    let n = 9;
    let graph_src = GraphSource::BenchEr { n, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    BatchRequest::new(
        graph_src,
        (0..2)
            .map(|seed| {
                ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0)
                    .with_byzantine(1, AdversaryKind::TokenHijacker)
                    .with_seed(seed)
            })
            .collect(),
    )
}

#[test]
fn repeat_submission_is_served_from_the_store() {
    let dir = tmpdir("repeat");
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());

    let health = client.healthz().unwrap();
    assert!(health.ok);
    assert_eq!(health.store_entries, 0);

    // Cold submission: everything simulates.
    let request = quick_request();
    let accepted = client.submit(&request).unwrap();
    assert_eq!(accepted.cells, 2);
    let first = client.wait(accepted.id, WAIT).unwrap();
    assert_eq!(first.status, "done", "error: {:?}", first.error);
    let s1 = first.stats.unwrap();
    assert_eq!((s1.hits, s1.misses), (0, 2));
    assert!(s1.rounds_simulated > 0);
    assert!(first.cells.iter().all(|c| !c.cached));
    assert!(first
        .cells
        .iter()
        .all(|c| c.outcome.as_ref().unwrap().dispersed));

    // Warm submission of the identical batch: zero rounds simulated.
    let accepted2 = client.submit(&request).unwrap();
    assert_ne!(accepted2.id, accepted.id);
    let second = client.wait(accepted2.id, WAIT).unwrap();
    assert_eq!(second.status, "done");
    let s2 = second.stats.unwrap();
    assert_eq!((s2.hits, s2.misses), (2, 0), "served entirely from store");
    assert_eq!(s2.rounds_simulated, 0, "zero rounds simulated");
    assert!(s2.rounds_saved > 0);
    assert!(second.cells.iter().all(|c| c.cached));
    // The replay is the exact stored outcome.
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(
            serde_json::to_string(a.outcome.as_ref().unwrap()).unwrap(),
            serde_json::to_string(b.outcome.as_ref().unwrap()).unwrap(),
            "byte-identical replay"
        );
    }

    // /stats aggregates both batches.
    let stats = client.stats().unwrap();
    assert_eq!(stats.store_entries, 2);
    assert_eq!(stats.batches_submitted, 2);
    assert_eq!(stats.batches_completed, 2);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.totals.hits, 2);
    assert_eq!(stats.totals.misses, 2);
    assert_eq!(stats.totals.rounds_simulated, s1.rounds_simulated);

    client.shutdown().unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The torn-read pin: `/stats` snapshots all batch-level counters in one
/// lock acquisition, so concurrent readers must never observe a state
/// where `completed` and `totals` (or `submitted` and `queue_depth`)
/// disagree. Before the single-lock fix, a reader could catch the gap
/// between the totals merge and the `completed` bump (separate atomics),
/// seeing totals from N batches next to `batches_completed == N ± 1`.
#[test]
fn concurrent_stats_readers_never_see_a_torn_snapshot() {
    let dir = tmpdir("torn");
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());

    // Readers hammer /stats while batches flow, checking the invariants
    // every snapshot must satisfy: one cell per batch, all simulated
    // (distinct seeds), so completed batches and accounted cells agree
    // exactly — and the queue arithmetic is exact, not saturated.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut violations = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = match client.stats() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let cells =
                        s.totals.hits + s.totals.misses + s.totals.errors + s.totals.deduped;
                    if cells != s.batches_completed {
                        violations.push(format!(
                            "totals account for {cells} cells but batches_completed is {}",
                            s.batches_completed
                        ));
                    }
                    if s.queue_depth != s.batches_submitted - s.batches_completed {
                        violations.push(format!(
                            "queue_depth {} != submitted {} - completed {}",
                            s.queue_depth, s.batches_submitted, s.batches_completed
                        ));
                    }
                }
                violations
            })
        })
        .collect();

    let n = 9;
    let graph_src = GraphSource::BenchEr { n, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    let batches = 12;
    let mut ids = Vec::new();
    for seed in 0..batches {
        let request = BatchRequest::new(
            graph_src.clone(),
            vec![
                ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0)
                    .with_byzantine(1, AdversaryKind::TokenHijacker)
                    .with_seed(seed),
            ],
        );
        ids.push(client.submit(&request).unwrap().id);
    }
    // Two workers drain out of order; wait on every id, not just the last.
    for id in ids {
        assert_eq!(client.wait(id, WAIT).unwrap().status, "done");
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        let violations = reader.join().unwrap();
        assert!(violations.is_empty(), "torn snapshots: {violations:?}");
    }

    let final_stats = client.stats().unwrap();
    assert_eq!(final_stats.batches_completed, batches);
    assert_eq!(final_stats.totals.misses, batches);
    assert_eq!(final_stats.queue_depth, 0);

    client.shutdown().unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_connection_does_not_block_the_daemon() {
    let dir = tmpdir("stall");
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());

    // A client that connects and never sends a byte. Requests are handled
    // on per-connection threads, so this must not stall anyone else.
    let stalled = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // acceptor picks it up
    let t0 = std::time::Instant::now();
    assert!(client.healthz().unwrap().ok);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthz answered behind a stalled connection in {:?}",
        t0.elapsed()
    );
    // Work still flows end-to-end.
    let accepted = client.submit(&quick_request()).unwrap();
    assert_eq!(client.wait(accepted.id, WAIT).unwrap().status, "done");

    drop(stalled);
    client.shutdown().unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_daemon_restart() {
    let dir = tmpdir("restart");
    let request = quick_request();
    let cold_stats;
    {
        let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
        let client = Client::new(daemon.local_addr());
        let accepted = client.submit(&request).unwrap();
        cold_stats = client.wait(accepted.id, WAIT).unwrap().stats.unwrap();
        client.shutdown().unwrap();
        daemon.join();
    }
    assert_eq!(cold_stats.misses, 2);

    // A fresh daemon on the same store dir serves the batch without
    // simulating a single round: the journal is the cache.
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());
    assert_eq!(client.healthz().unwrap().store_entries, 2);
    let accepted = client.submit(&request).unwrap();
    let reply = client.wait(accepted.id, WAIT).unwrap();
    let stats = reply.stats.unwrap();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    assert_eq!(stats.rounds_simulated, 0);
    client.shutdown().unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shutdown drain race: a shutdown arriving while a slow batch is
/// still queued or mid-simulation must not drop its store write-backs.
/// `POST /shutdown` stops the acceptor, but the workers drain the queue
/// and flush every append before `join` returns — a restarted daemon
/// (or a cold open here) finds all cells journaled and chain-valid.
#[test]
fn shutdown_drains_in_flight_write_backs() {
    let dir = tmpdir("drain");
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());

    // Slow cells: a larger graph, several seeds, all distinct digests.
    let graph_src = GraphSource::BenchEr { n: 32, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    let cells = 3;
    let request = BatchRequest::new(
        graph_src,
        (0..cells)
            .map(|seed| {
                ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0).with_seed(seed)
            })
            .collect(),
    );
    client.submit(&request).unwrap();
    // Shutdown races the batch: it is queued or mid-simulation now.
    client.shutdown().unwrap();
    daemon.join();

    let store = bd_service::ResultStore::open(&dir).unwrap();
    assert_eq!(
        store.len(),
        cells as usize,
        "shutdown dropped in-flight write-backs"
    );
    assert_eq!(store.verify_chain().unwrap().entries, cells as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_cell_errors_and_bad_requests_are_reported() {
    let dir = tmpdir("errors");
    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    let client = Client::new(daemon.local_addr());

    // A batch mixing a good cell and an impossible one: the batch is
    // "done", the bad cell carries its error, the good one its outcome.
    let mut request = quick_request();
    request.specs[1] = request.specs[1].clone().with_robots(0);
    let accepted = client.submit(&request).unwrap();
    let reply = client.wait(accepted.id, WAIT).unwrap();
    assert_eq!(reply.status, "done");
    assert!(reply.cells[0].outcome.is_some());
    let err = reply.cells[1].error.as_ref().unwrap();
    assert!(err.contains("no robots"), "{err}");
    assert_eq!(reply.stats.unwrap().errors, 1);

    // Unknown batch id → 404; malformed body → 400; bad route → 404.
    match client.batch(999) {
        Err(ServiceError::Http { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    match client.submit_raw("not json at all") {
        Err(ServiceError::Http { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }
    // Empty batches are rejected up front.
    let empty = BatchRequest::new(GraphSource::Ring { n: 6 }, Vec::new());
    match client.submit(&empty) {
        Err(ServiceError::Http { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }

    // A graph source that cannot materialize fails the whole batch.
    let graph = asymmetric_gnp(9, 1000).unwrap();
    let bad_graph = BatchRequest::new(
        GraphSource::Ring { n: 0 },
        vec![ScenarioSpec::gathered(Algorithm::RingOptimal, &graph, 0)],
    );
    let accepted = client.submit(&bad_graph).unwrap();
    let reply = client.wait(accepted.id, WAIT).unwrap();
    assert_eq!(reply.status, "failed");
    assert!(reply.error.is_some());

    client.shutdown().unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}
