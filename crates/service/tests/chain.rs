//! Tamper-evidence of the hash-chained journal, property-tested.
//!
//! The chain's contract (see `store` module docs and VERIFICATION.md):
//! any in-place edit, record reorder, interior deletion, or
//! truncate-then-append splice breaks a link, and `verify_chain` names the
//! 1-based index of the first entry that fails. Honest limits are pinned
//! too: truncating the journal *exactly* at a line boundary is
//! undetectable by the chain alone — only the changed tip betrays it to a
//! reader who anchored the previous tip externally.
//!
//! A final regression drives the real daemon with concurrent workers and
//! asserts the journal their interleaved write-backs produce is
//! chain-valid end to end.

use bd_dispersion::adversaries::AdversaryKind;
use bd_dispersion::canon::scenario_digest;
use bd_dispersion::runner::{Algorithm, Outcome, ScenarioSpec};
use bd_dispersion::Session;
use bd_graphs::generators::asymmetric_gnp;
use bd_graphs::PortGraph;
use bd_runtime::EngineConfig;
use bd_service::protocol::BatchRequest;
use bd_service::{
    Client, Daemon, GraphSource, ResultStore, ServeConfig, ServiceError, GENESIS_TIP,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// A pool of real (spec, outcome) cells, simulated once per process: the
/// properties below exercise journal composition, not the engine.
fn cells() -> &'static Vec<(ScenarioSpec, Outcome)> {
    static CELLS: OnceLock<Vec<(ScenarioSpec, Outcome)>> = OnceLock::new();
    CELLS.get_or_init(|| {
        let graph = pool_graph();
        let session = Session::new(graph.clone());
        (0..6u64)
            .map(|seed| {
                let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, graph, 0)
                    .with_byzantine(1, AdversaryKind::Squatter)
                    .with_seed(seed);
                let out = session.run(&spec).unwrap();
                (spec, out)
            })
            .collect()
    })
}

fn pool_graph() -> &'static PortGraph {
    static GRAPH: OnceLock<PortGraph> = OnceLock::new();
    GRAPH.get_or_init(|| asymmetric_gnp(9, 1000).unwrap())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bd-chain-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Open a store under `dir` and journal the pool cells selected by
/// `picks`, in order. The returned store stays open — tamper the file
/// behind its back, then let `verify_chain` catch the edit.
fn build_journal(dir: &PathBuf, picks: &[usize]) -> ResultStore {
    let cfg = EngineConfig::default();
    let store = ResultStore::open(dir).unwrap();
    for &i in picks {
        let (spec, out) = &cells()[i];
        store
            .put(scenario_digest(pool_graph(), spec, &cfg), spec, out)
            .unwrap();
    }
    store
}

fn journal_lines(store: &ResultStore) -> Vec<String> {
    std::fs::read_to_string(store.path())
        .unwrap()
        .lines()
        .map(String::from)
        .collect()
}

fn write_lines(store: &ResultStore, lines: &[String]) {
    let mut text = lines.join("\n");
    if !lines.is_empty() {
        text.push('\n');
    }
    std::fs::write(store.path(), text).unwrap();
}

/// Assert the live audit fails at exactly `expect_index` (1-based), and —
/// unless the damage sits on the final line, where an undecodable entry is
/// indistinguishable from a torn append and gets recovered — that a cold
/// reopen refuses the journal at the same place.
fn assert_tampered(store: &ResultStore, dir: &PathBuf, expect_index: usize, context: &str) {
    match store.verify_chain() {
        Err(ServiceError::Tampered { index, .. }) => {
            assert_eq!(index, expect_index, "{context}: audit's failing index")
        }
        other => panic!("{context}: audit accepted a tampered journal: {other:?}"),
    }
    let lines = journal_lines(store).len();
    if expect_index < lines {
        match ResultStore::open(dir) {
            Err(ServiceError::Tampered { index, .. }) => {
                assert_eq!(index, expect_index, "{context}: open's failing index")
            }
            Err(ServiceError::Corrupt { line, .. }) => {
                // An edit that breaks JSON decoding on an interior line is
                // refused as corruption at open; the audit above still
                // calls it tampering. Both name the same line.
                assert_eq!(line, expect_index, "{context}: open's failing line")
            }
            other => panic!("{context}: reopen accepted a tampered journal: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest journals verify: any non-empty subset of distinct cells, in
    /// varying order, audited live and after a cold reopen.
    #[test]
    fn random_journal_verifies(mask in 1usize..64, rot in 0usize..6) {
        let picks: Vec<usize> = (0..6)
            .map(|i| (i + rot) % 6)
            .filter(|i| mask & (1 << i) != 0)
            .collect();
        let dir = tmpdir("ok");
        let store = build_journal(&dir, &picks);
        let audit = store.verify_chain().unwrap();
        prop_assert_eq!(audit.entries, picks.len());
        prop_assert_eq!(&audit.tip, &store.tip());
        prop_assert_ne!(&audit.tip, GENESIS_TIP);
        drop(store);
        let reopened = ResultStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.len(), picks.len());
        prop_assert_eq!(reopened.verify_chain().unwrap(), audit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped byte anywhere in any record is detected, with the
    /// record's 1-based index.
    #[test]
    fn single_byte_edit_is_detected(line_pick in 0usize..4, frac in 0.0f64..1.0) {
        let dir = tmpdir("flip");
        let store = build_journal(&dir, &[0, 1, 2, 3]);
        let mut lines = journal_lines(&store);
        let target = line_pick % lines.len();
        let mut bytes = lines[target].clone().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        // Flip within ASCII so the line stays one line; never a no-op.
        bytes[pos] = match bytes[pos] {
            b'"' => b'\'',
            b'}' => b')',
            b'{' => b'(',
            c if c.is_ascii_alphanumeric() => c ^ 0x01,
            _ => b'x',
        };
        lines[target] = String::from_utf8(bytes).unwrap();
        write_lines(&store, &lines);
        assert_tampered(&store, &dir, target + 1, "byte flip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Swapping any two records breaks the chain at the earlier position.
    #[test]
    fn record_reorder_is_detected(a in 0usize..4, delta in 1usize..4) {
        let b = (a + delta) % 4;
        let dir = tmpdir("swap");
        let store = build_journal(&dir, &[0, 1, 2, 3]);
        let mut lines = journal_lines(&store);
        lines.swap(a, b);
        write_lines(&store, &lines);
        assert_tampered(&store, &dir, a.min(b) + 1, "reorder");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Deleting an interior record (truncate + re-append the tail) breaks
    /// the chain exactly where the record went missing.
    #[test]
    fn interior_deletion_is_detected(victim in 0usize..3) {
        let dir = tmpdir("del");
        let store = build_journal(&dir, &[0, 1, 2, 3]);
        let mut lines = journal_lines(&store);
        lines.remove(victim);
        write_lines(&store, &lines);
        assert_tampered(&store, &dir, victim + 1, "interior deletion");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncating to a prefix and then splicing back a *later* record (its
/// `prev` names a chain tip that no longer exists) is detected at the
/// spliced record.
#[test]
fn truncate_then_append_splice_is_detected() {
    let dir = tmpdir("splice");
    let store = build_journal(&dir, &[0, 1, 2, 3]);
    let lines = journal_lines(&store);
    let spliced = vec![lines[0].clone(), lines[1].clone(), lines[3].clone()];
    write_lines(&store, &spliced);
    assert_tampered(&store, &dir, 3, "truncate-then-append");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The documented honest limit: truncation exactly at a line boundary is
/// invisible to the chain itself — the journal verifies, and only the tip
/// (anchored externally) betrays the loss.
#[test]
fn boundary_truncation_is_undetectable_but_moves_the_tip() {
    let dir = tmpdir("trunc");
    let store = build_journal(&dir, &[0, 1, 2, 3]);
    let full_tip = store.verify_chain().unwrap().tip;
    let lines = journal_lines(&store);
    write_lines(&store, &lines[..2]);
    drop(store);
    let store = ResultStore::open(&dir).expect("boundary truncation is not detectable");
    let audit = store.verify_chain().unwrap();
    assert_eq!(audit.entries, 2);
    assert_ne!(audit.tip, full_tip, "an anchored tip catches the loss");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fix for that honest limit: an anchored store persists its tip
/// out-of-band after every append, and both the live audit and a cold
/// anchored reopen compare the journal's recomputed tip against it —
/// boundary truncation now fails loudly, while a chain-only open of the
/// same file stays blind.
#[test]
fn anchored_store_detects_boundary_truncation() {
    let dir = tmpdir("anchored");
    let anchor = dir.join("tip.anchor");
    let cfg = EngineConfig::default();
    let store = ResultStore::open_anchored(&dir, &anchor).unwrap();
    for i in 0..4 {
        let (spec, out) = &cells()[i];
        store
            .put(scenario_digest(pool_graph(), spec, &cfg), spec, out)
            .unwrap();
    }
    let full_tip = store.verify_chain().unwrap().tip;
    assert_eq!(
        std::fs::read_to_string(&anchor).unwrap().trim(),
        full_tip,
        "every append rewrites the anchor"
    );

    // Truncate exactly at a line boundary behind the store's back.
    let lines = journal_lines(&store);
    write_lines(&store, &lines[..2]);
    match store.verify_chain() {
        Err(ServiceError::AnchorMismatch {
            journal_tip,
            anchored_tip,
            ..
        }) => {
            assert_eq!(anchored_tip, full_tip);
            assert_ne!(journal_tip, full_tip);
        }
        other => panic!("anchored audit accepted a truncated journal: {other:?}"),
    }
    drop(store);

    match ResultStore::open_anchored(&dir, &anchor) {
        Err(ServiceError::AnchorMismatch { .. }) => {}
        other => panic!("anchored reopen accepted a truncated journal: {other:?}"),
    }
    // The chain alone still verifies the shorter journal — the blindness
    // the anchor exists to cure.
    ResultStore::open(&dir).expect("chain-only open stays blind to boundary truncation");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Anchored lifecycle: a fresh anchor is initialized from the journal at
/// open (genesis for an empty store), tracks every append, and an intact
/// journal reopens against it cleanly.
#[test]
fn anchor_initializes_and_round_trips() {
    let dir = tmpdir("anchor-rt");
    let anchor = dir.join("tip.anchor");
    let cfg = EngineConfig::default();
    let store = ResultStore::open_anchored(&dir, &anchor).unwrap();
    assert_eq!(store.anchor(), Some(anchor.as_path()));
    assert_eq!(
        std::fs::read_to_string(&anchor).unwrap().trim(),
        GENESIS_TIP,
        "empty store anchors the genesis tip"
    );
    let (spec, out) = &cells()[0];
    store
        .put(scenario_digest(pool_graph(), spec, &cfg), spec, out)
        .unwrap();
    let tip = store.tip();
    assert_eq!(std::fs::read_to_string(&anchor).unwrap().trim(), tip);
    drop(store);

    let reopened = ResultStore::open_anchored(&dir, &anchor).unwrap();
    assert_eq!(reopened.len(), 1);
    let audit = reopened.verify_chain().unwrap();
    assert_eq!(audit.tip, tip);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the daemon's write-back path: many batches drained by
/// concurrent workers must still produce one globally valid chain — the
/// store lock serializes appends, and the audit endpoint proves it over
/// the real wire.
#[test]
fn concurrent_worker_write_backs_stay_chain_valid() {
    let dir = tmpdir("workers");
    let mut config = ServeConfig::ephemeral(&dir);
    config.workers = 4;
    config.anchor = Some(dir.join("tip.anchor"));
    let daemon = Daemon::start(config).unwrap();
    let client = Client::new(daemon.local_addr());

    let graph_src = GraphSource::BenchEr { n: 9, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    // Eight one-cell batches with distinct digests, all in flight at once.
    let ids: Vec<u64> = (0..8u64)
        .map(|seed| {
            let request = BatchRequest::new(
                graph_src.clone(),
                vec![
                    ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0)
                        .with_byzantine(1, AdversaryKind::Squatter)
                        .with_seed(seed),
                ],
            );
            client.submit(&request).unwrap().id
        })
        .collect();
    for id in ids {
        let reply = client.wait(id, Duration::from_secs(120)).unwrap();
        assert_eq!(reply.status, "done", "error: {:?}", reply.error);
    }

    let audit = client.audit().unwrap();
    assert!(audit.ok, "tampered: {:?}", audit.error);
    assert_eq!(audit.entries, 8);
    assert!(audit.failing_index.is_none());
    assert_ne!(audit.tip, GENESIS_TIP);

    client.shutdown().unwrap();
    daemon.join();

    // The journal the workers interleaved on survives a cold reopen too —
    // including against the tip the daemon anchored on every write-back.
    let store = ResultStore::open_anchored(&dir, dir.join("tip.anchor")).unwrap();
    assert_eq!(store.len(), 8);
    assert_eq!(store.verify_chain().unwrap().tip, audit.tip);
    let _ = std::fs::remove_dir_all(&dir);
}
