//! The robustness layer, tested adversarially (RESILIENCE.md).
//!
//! Three contracts ride here:
//!
//! * **Keyed MACs beat chain-consistent forgery.** The hash chain alone
//!   cannot distinguish an adversary who rewrites history *and*
//!   recomputes every chain digest from an honest writer — these tests
//!   mount exactly that splice and pin that an unkeyed store is blind to
//!   it while a keyed store ([`StoreKey`]) rejects it, whether the forged
//!   record drops its MAC or replays a stale one.
//! * **Degraded compute-only mode.** A daemon whose store fails
//!   verification at startup must come up anyway, say so on `/healthz`,
//!   `/stats`, and `/metrics`, serve simulations without persistence,
//!   and refuse `/audit` with `503`.
//! * **Deterministic fault injection.** The same `FaultPlan` seed must
//!   reproduce the same fault sequence byte-for-byte — the property the
//!   crash drill's "replay a failing cycle by seed" workflow rests on.

use bd_chaos::{Chaos, FaultPlan};
use bd_dispersion::canon::SpecDigest;
use bd_dispersion::runner::{Algorithm, Outcome, ScenarioSpec};
use bd_dispersion::BatchPlanner;
use bd_graphs::generators::asymmetric_gnp;
use bd_service::protocol::BatchRequest;
use bd_service::{
    Client, ClientConfig, Daemon, GraphSource, ResultStore, ServeConfig, ServiceError, StoreKey,
    StoreOptions,
};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bd-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One real `(spec, outcome)` cell, simulated once per process; the
/// journal tests key it under synthetic digests.
fn cell() -> &'static (ScenarioSpec, Outcome) {
    static CELL: OnceLock<(ScenarioSpec, Outcome)> = OnceLock::new();
    CELL.get_or_init(|| {
        let graph = Arc::new(asymmetric_gnp(8, 1000).unwrap());
        let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0).with_seed(1);
        let mut planner = BatchPlanner::new();
        planner.add(&graph, spec.clone());
        let outcome = planner.run().remove(0).unwrap();
        (spec, outcome)
    })
}

fn digest(i: u64) -> SpecDigest {
    SpecDigest::of_bytes(format!("chaos-test entry {i}").as_bytes())
}

fn fill(store: &ResultStore, count: u64) -> Vec<String> {
    let (spec, outcome) = cell();
    (0..count)
        .map(|i| {
            store.put(digest(i), spec, outcome).unwrap();
            store.tip()
        })
        .collect()
}

/// Recompute a journal line's chain digest the way the store does — the
/// capability every file-writing adversary has, key or no key.
fn forge_chain(body: &str) -> String {
    let mut bytes = Vec::with_capacity(5 + body.len());
    bytes.extend_from_slice(b"bdsc1");
    bytes.extend_from_slice(body.as_bytes());
    SpecDigest::of_bytes(&bytes).to_string()
}

/// Slice the body JSON out of a journal line (keyed or not), returning
/// `(body, mac)`.
fn dissect(line: &str) -> (&str, Option<&str>) {
    const HEAD: usize = 8; // {"body":
    if let Some(pos) = line.rfind("\",\"mac\":\"") {
        let body = &line[HEAD..pos - 10 - 32]; // ,"chain":"<32 hex>
        let mac = &line[line.len() - 34..line.len() - 2];
        (body, Some(mac))
    } else {
        (&line[HEAD..line.len() - 44], None)
    }
}

/// The attack the bare chain cannot see: replay an old record's body at
/// the journal tip with its `prev` rewritten and the chain digest
/// recomputed. Returns the forged line, optionally carrying `mac` (a
/// keyless adversary either drops the MAC or replays the stale one —
/// both are modeled).
fn forged_replay_line(donor_line: &str, new_prev: &str, mac: Option<&str>) -> String {
    let (body, donor_mac) = dissect(donor_line);
    let prev_pos = body
        .rfind("\"prev\":\"")
        .expect("prev is the last body field")
        + 8;
    let forged_body = format!("{}{new_prev}\"}}", &body[..prev_pos]);
    let chain = forge_chain(&forged_body);
    match mac.or(donor_mac).filter(|_| mac.is_some()) {
        Some(mac) => format!("{{\"body\":{forged_body},\"chain\":\"{chain}\",\"mac\":\"{mac}\"}}"),
        None => format!("{{\"body\":{forged_body},\"chain\":\"{chain}\"}}"),
    }
}

#[test]
fn chain_consistent_forgery_fools_the_chain_but_not_the_key() {
    let dir = tmpdir("forge");
    let key = StoreKey::new("test-signing-key");
    let store =
        ResultStore::open_with(&dir, StoreOptions::default().with_key(key.clone())).unwrap();
    assert!(store.keyed());
    let tips = fill(&store, 3);
    let path = store.path().to_path_buf();
    drop(store);

    // Forge a fourth record: entry 1's body replayed at the tip, chain
    // recomputed — everything a file-writing adversary without the key
    // can mint. Variant A drops the MAC entirely.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let forged = forged_replay_line(lines[0], &tips[2], None);
    std::fs::write(&path, format!("{text}{forged}\n")).unwrap();

    // The chain-only reader is blind: every link verifies.
    let blind = ResultStore::open_with(&dir, StoreOptions::default()).unwrap();
    let audit = blind.verify_chain().unwrap();
    assert_eq!(audit.entries, 4, "the bare chain accepts the splice");
    drop(blind);

    // The keyed reader names it, at the forged record's index.
    match ResultStore::open_with(&dir, StoreOptions::default().with_key(key.clone())) {
        Err(ServiceError::Tampered { index, msg, .. }) => {
            assert_eq!(index, 4);
            assert!(msg.contains("no MAC"), "{msg}");
        }
        other => panic!("keyed open accepted a MAC-less forgery: {other:?}"),
    }

    // Variant B: the adversary replays the donor record's stale MAC —
    // it fails too, because the MAC commits to the exact body bytes
    // (including the rewritten `prev`).
    let (_, donor_mac) = dissect(lines[0]);
    let forged = forged_replay_line(lines[0], &tips[2], donor_mac);
    std::fs::write(&path, format!("{text}{forged}\n")).unwrap();
    match ResultStore::open_with(&dir, StoreOptions::default().with_key(key)) {
        Err(ServiceError::Tampered { index, msg, .. }) => {
            assert_eq!(index, 4);
            assert!(msg.contains("MAC does not verify"), "{msg}");
        }
        other => panic!("keyed open accepted a stale-MAC forgery: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn key_lifecycle_round_trips_and_refusals() {
    let dir = tmpdir("keys");
    let key = StoreKey::new("alpha");
    let store =
        ResultStore::open_with(&dir, StoreOptions::default().with_key(key.clone())).unwrap();
    fill(&store, 2);
    drop(store);

    // Same key: clean reopen, clean audit.
    let reopened =
        ResultStore::open_with(&dir, StoreOptions::default().with_key(key.clone())).unwrap();
    assert_eq!(reopened.verify_chain().unwrap().entries, 2);
    drop(reopened);

    // Wrong key: refused at the first record.
    match ResultStore::open_with(
        &dir,
        StoreOptions::default().with_key(StoreKey::new("beta")),
    ) {
        Err(ServiceError::Tampered { index: 1, msg, .. }) => {
            assert!(msg.contains("MAC does not verify"), "{msg}");
        }
        other => panic!("wrong key was accepted: {other:?}"),
    }

    // No key: readable — MACs ride along ignored, the chain still binds.
    let unkeyed = ResultStore::open_with(&dir, StoreOptions::default()).unwrap();
    assert!(!unkeyed.keyed());
    assert_eq!(unkeyed.len(), 2);
    assert_eq!(unkeyed.get(&digest(0)).as_ref(), Some(&cell().1));
    drop(unkeyed);
    let _ = std::fs::remove_dir_all(&dir);

    // The reverse migration is refused by design: an unkeyed journal
    // opened with a key has no MACs to verify — keying starts fresh.
    let dir = tmpdir("keys-refuse");
    let store = ResultStore::open_with(&dir, StoreOptions::default()).unwrap();
    fill(&store, 1);
    drop(store);
    match ResultStore::open_with(
        &dir,
        StoreOptions::default().with_key(StoreKey::new("late")),
    ) {
        Err(ServiceError::Tampered { index: 1, msg, .. }) => {
            assert!(msg.contains("no MAC"), "{msg}");
        }
        other => panic!("unkeyed journal opened keyed: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The anchor's documented crash window: an anchor exactly one entry
/// behind the journal is the signature of dying between append and
/// anchor rewrite — accepted and re-anchored. Two or more behind is not
/// a crash artifact and must refuse.
#[test]
fn anchor_crash_window_is_exactly_one_entry() {
    let dir = tmpdir("window");
    let anchor = dir.join("tip.anchor");
    let store = ResultStore::open_anchored(&dir, &anchor).unwrap();
    let tips = fill(&store, 3);
    drop(store);

    // One behind: the crash window. Reopen accepts and re-anchors.
    std::fs::write(&anchor, format!("{}\n", tips[1])).unwrap();
    let store = ResultStore::open_anchored(&dir, &anchor).unwrap();
    assert_eq!(store.verify_chain().unwrap().tip, tips[2]);
    assert_eq!(
        std::fs::read_to_string(&anchor).unwrap().trim(),
        tips[2],
        "the accepted window re-anchors to the journal tip"
    );
    drop(store);

    // Two behind: refused loudly.
    std::fs::write(&anchor, format!("{}\n", tips[0])).unwrap();
    match ResultStore::open_anchored(&dir, &anchor) {
        Err(ServiceError::AnchorMismatch { anchored_tip, .. }) => {
            assert_eq!(anchored_tip, tips[0]);
        }
        other => panic!("a two-entry anchor lag was accepted: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same plan, same seed → the same faults at the same appends, twice
/// over: the property that makes a failing drill cycle replayable.
#[test]
fn fault_plans_replay_deterministically() {
    let run = |tag: &str| {
        let dir = tmpdir(tag);
        let chaos = Chaos::from_plan(FaultPlan::journal_mix(0xfeed, 5));
        let store = ResultStore::open_with(&dir, StoreOptions::default().with_chaos(chaos.clone()))
            .unwrap();
        let (spec, outcome) = cell();
        let mut trace = Vec::new();
        for i in 0..30u64 {
            match store.put(digest(i), spec, outcome) {
                Ok(_) => trace.push("ok".to_string()),
                Err(e) => {
                    trace.push(e.to_string());
                    break;
                }
            }
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        (trace, chaos.counters())
    };
    let (trace_a, counters_a) = run("replay-a");
    let (trace_b, counters_b) = run("replay-b");
    assert_eq!(trace_a, trace_b, "same seed, same fault sequence");
    assert_eq!(counters_a, counters_b);
    assert!(
        trace_a.last().is_some_and(|t| t.contains("chaos")),
        "a 1-in-5 mix kills within 30 appends: {trace_a:?}"
    );
}

/// A daemon whose store refuses to open must start **degraded** — alive,
/// honest about it on every surface, serving simulations without
/// persistence, and refusing the audit — rather than not start at all.
#[test]
fn tampered_store_degrades_the_daemon_instead_of_killing_it() {
    let dir = tmpdir("degraded");
    // Build a journal, then flip one interior byte so reopening fails.
    let store = ResultStore::open_with(&dir, StoreOptions::default()).unwrap();
    fill(&store, 2);
    let path = store.path().to_path_buf();
    drop(store);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replace("\"prev\"", "\"perv\"")).unwrap();
    assert!(ResultStore::open_with(&dir, StoreOptions::default()).is_err());

    let daemon = Daemon::start(ServeConfig::ephemeral(&dir)).unwrap();
    assert!(daemon.is_degraded());
    let client = Client::new(daemon.local_addr());

    let health = client.healthz().unwrap();
    assert!(health.ok, "degraded is not dead");
    assert!(health.degraded);
    assert_eq!(health.store_entries, 0);

    // Simulations still flow — compute-only, nothing cached.
    let graph_src = GraphSource::BenchEr { n: 8, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    let request = BatchRequest::new(
        graph_src,
        vec![ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &graph, 0).with_seed(7)],
    );
    let accepted = client.submit(&request).unwrap();
    let reply = client.wait(accepted.id, Duration::from_secs(120)).unwrap();
    assert_eq!(reply.status, "done", "error: {:?}", reply.error);
    assert!(!reply.cells[0].cached);
    assert!(reply.cells[0].outcome.is_some());

    // The audit has nothing trustworthy to audit.
    match client.audit() {
        Err(ServiceError::Http { status: 503, .. }) => {}
        other => panic!("audit on a degraded daemon: {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert!(stats.degraded);
    assert_eq!(stats.store_entries, 0);

    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("bd_degraded 1"), "{metrics}");
    assert!(metrics.contains("bd_store_available 0"), "{metrics}");

    client.shutdown().unwrap();
    daemon.join();

    // The tampered journal was never touched: the evidence survives.
    match ResultStore::open_with(&dir, StoreOptions::default()) {
        Err(ServiceError::Corrupt { .. } | ServiceError::Tampered { .. }) => {}
        other => panic!("degraded daemon disturbed the evidence: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The client's deadlines are typed errors, not hangs: a server that
/// accepts and never answers surfaces [`ServiceError::Timeout`] within
/// the configured budget.
#[test]
fn stalled_server_surfaces_the_typed_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let held = listener.accept().ok();
        std::thread::sleep(Duration::from_millis(500));
        drop(held);
    });
    let client = Client::with_config(addr, ClientConfig::impatient(Duration::from_millis(100)));
    let t0 = std::time::Instant::now();
    match client.healthz() {
        Err(ServiceError::Timeout { what, after }) => {
            assert!(what == "read" || what == "request", "{what}");
            assert!(after <= Duration::from_millis(100));
        }
        other => panic!("expected the typed timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "timed out in {:?}, not within the budget",
        t0.elapsed()
    );
    let _ = hold.join();
}
