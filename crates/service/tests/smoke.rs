//! The service smoke: spawn the **real** `bd-serve` binary on an ephemeral
//! port (with structured logging and span export armed), submit a quick
//! Table 1 row twice, assert the second response is served entirely from
//! the store, check the request's trace id end to end (response echo →
//! log stream → Chrome trace export), chain-verify the journal through
//! `GET /audit`, enforce the `/metrics` ↔ OBSERVABILITY.md doc-sync rule
//! mechanically, and verify the daemon shuts down cleanly (exit code 0,
//! not a kill). CI runs exactly this test as the serving-layer gate.

use bd_dispersion::runner::ScenarioSpec;
use bd_service::protocol::BatchRequest;
use bd_service::{Client, GraphSource};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        // Only reached on test failure paths; the happy path has already
        // waited for a clean exit.
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// OBSERVABILITY.md rule 1, enforced mechanically: every family the
/// exposition renders must have a `` `name` `` row in the doc. Chaos
/// families are exempt only in the sense that they may be *absent* from
/// the exposition (this daemon runs without `--chaos-plan`); any family
/// that does render must be documented, chaos included.
fn assert_families_documented(exposition: &bd_telemetry::prom::Exposition) {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBSERVABILITY.md");
    let doc = std::fs::read_to_string(doc_path).expect("read OBSERVABILITY.md");
    for family in exposition.families.keys() {
        assert!(
            doc.contains(&format!("`{family}`")),
            "/metrics family {family} has no row in OBSERVABILITY.md — \
             every rendered family must be documented (rule 1)"
        );
    }
}

#[test]
fn bd_serve_round_trip_cache_hit_and_clean_shutdown() {
    let dir = std::env::temp_dir().join(format!("bd-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log_path = std::env::temp_dir().join(format!("bd-serve-smoke-log-{}", std::process::id()));
    let trace_path =
        std::env::temp_dir().join(format!("bd-serve-smoke-trace-{}", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&trace_path);

    let mut child = Command::new(env!("CARGO_BIN_EXE_bd-serve"))
        .args([
            "--store",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--log",
            log_path.to_str().unwrap(),
            "--log-level",
            "debug",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn bd-serve");

    // Contract: first stdout line is `listening on <addr>`.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ServerGuard(child);
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("bd-serve prints its address")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("parse address");
    let client = Client::new(addr);
    assert!(client.healthz().unwrap().ok);

    // One quick table1-row cell: Theorem 4 at tolerance on the bench graph.
    let n = 9;
    let graph_src = GraphSource::BenchEr { n, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    let algo = bd_dispersion::runner::Algorithm::GatheredThirdTh4;
    let request = BatchRequest::new(
        graph_src,
        vec![ScenarioSpec::evaluation(algo, &graph)
            .with_byzantine(
                algo.tolerance(n),
                bd_dispersion::adversaries::AdversaryKind::TokenHijacker,
            )
            .with_seed(1000)],
    );
    // `BatchRequest::new` stamped the content-derived trace id.
    let request_id = request.request_id.clone();
    assert_eq!(request_id.len(), 16, "16-hex digest fold: {request_id:?}");
    let wait = Duration::from_secs(120);

    let first = client.submit(&request).unwrap();
    assert_eq!(first.request_id, request_id, "202 echoes the trace id");
    let first = client.wait(first.id, wait).unwrap();
    assert_eq!(first.status, "done", "error: {:?}", first.error);
    assert_eq!(first.request_id, request_id, "reply echoes the trace id");
    let s1 = first.stats.unwrap();
    assert_eq!((s1.hits, s1.misses), (0, 1));
    assert!(first.cells[0].outcome.as_ref().unwrap().dispersed);

    let second = client.submit(&request).unwrap();
    assert_eq!(
        second.request_id, request_id,
        "same content, same deterministic id (rule 3: no wall-clock)"
    );
    let second = client.wait(second.id, wait).unwrap();
    let s2 = second.stats.unwrap();
    assert_eq!(
        (s2.hits, s2.misses),
        (1, 0),
        "second response is a cache hit"
    );
    assert_eq!(s2.rounds_simulated, 0, "zero rounds simulated on the rerun");
    assert!(second.cells[0].cached);

    let stats = client.stats().unwrap();
    assert_eq!(stats.store_entries, 1);
    assert_eq!(stats.batches_completed, 2);

    // The live /metrics surface, read through the promoted parser
    // (`bd_telemetry::prom::parse`): the exposition must parse — which
    // already enforces that every sample belongs to a `# TYPE`-announced
    // family and every value is float-parseable — and its counters must
    // agree with /stats.
    let exposition = client.metrics_parsed().unwrap();
    for (family, expected) in [
        ("bd_store_entries", 1.0),
        ("bd_store_hits_total", 1.0),
        ("bd_batches_submitted_total", 2.0),
        ("bd_batches_completed_total", 2.0),
        ("bd_queue_depth", 0.0),
        ("bd_cells_miss_total", 1.0),
    ] {
        assert_eq!(
            exposition.value(family),
            Some(expected),
            "family {family} in exposition"
        );
    }
    // The simulated cell produced one per-row throughput observation.
    assert_eq!(
        exposition.histogram_count("bd_row_rounds_per_sec", &[("row", "GatheredThirdTh4")]),
        Some(1.0),
        "row histogram in exposition"
    );
    // The request lifecycle stages: both batches waited in the queue,
    // exactly one (the cold one) simulated and wrote back, and every
    // HTTP exchange so far was read and responded to.
    for (stage, at_least) in [
        ("read_parse", 2.0),
        ("queue_wait", 2.0),
        ("simulate", 2.0),
        ("store_write", 2.0),
        ("respond", 2.0),
    ] {
        let count = exposition
            .histogram_count("bd_request_duration_micros", &[("stage", stage)])
            .unwrap_or_else(|| panic!("stage {stage} series missing"));
        assert!(count >= at_least, "stage {stage} observed {count} times");
    }
    assert!(
        exposition.value("bd_queue_wait_micros_total").is_some(),
        "queue wait counter present"
    );
    assert_families_documented(&exposition);

    // The journal the daemon just wrote chain-verifies over the wire.
    let audit = client.audit().unwrap();
    assert!(audit.ok, "tampered journal: {:?}", audit.error);
    assert_eq!(audit.entries, 1);
    assert_ne!(audit.tip, bd_service::GENESIS_TIP);

    // Clean shutdown: the daemon drains and exits 0 on its own.
    client.shutdown().unwrap();
    let status = guard.0.wait().expect("wait for bd-serve");
    assert!(status.success(), "bd-serve exited {status:?}");

    // The structured log stream: JSONL events carrying the trace id for
    // both the acceptance and the completion of each batch.
    let log = std::fs::read_to_string(&log_path).expect("read log file");
    let accepted: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"event\":\"batch_accepted\""))
        .collect();
    assert_eq!(accepted.len(), 2, "two accepted batches logged:\n{log}");
    for line in &accepted {
        assert!(line.starts_with("{\"ts\":"), "JSONL shape: {line}");
        assert!(
            line.contains(&format!("\"req\":\"{request_id}\"")),
            "accepted event carries the trace id: {line}"
        );
    }
    let done: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"event\":\"batch_done\""))
        .collect();
    assert_eq!(done.len(), 2, "two completed batches logged:\n{log}");
    assert!(
        done[0].contains("\"misses\":\"1\"") && done[1].contains("\"hits\":\"1\""),
        "completion events carry the cache accounting:\n{log}"
    );

    // The Chrome trace export: each batch ran under a `request` span
    // whose args carry the client's trace id, and the planner's batch
    // span inherited it as a tag — per-request lifelines are separable.
    let trace = std::fs::read_to_string(&trace_path).expect("read trace file");
    let request_spans = trace
        .lines()
        .filter(|l| l.contains("\"cat\":\"request\"") && l.contains("\"ph\":\"B\""))
        .count();
    assert_eq!(request_spans, 2, "one request span per batch:\n{trace}");
    assert!(
        trace.contains(&format!("\"req\":\"{request_id}\"")),
        "trace spans carry the client-submitted id:\n{trace}"
    );
    let tagged_batches = trace
        .lines()
        .filter(|l| l.contains("\"cat\":\"batch\"") && l.contains(&request_id))
        .count();
    assert!(
        tagged_batches >= 2,
        "planner batch spans are tagged with the request id:\n{trace}"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&trace_path);
}
