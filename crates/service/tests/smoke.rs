//! The service smoke: spawn the **real** `bd-serve` binary on an ephemeral
//! port, submit a quick Table 1 row twice, assert the second response is
//! served entirely from the store, chain-verify the journal through
//! `GET /audit`, and verify the daemon shuts down cleanly (exit code 0,
//! not a kill). CI runs exactly this test as the serving-layer gate.

use bd_dispersion::runner::ScenarioSpec;
use bd_service::protocol::BatchRequest;
use bd_service::{Client, GraphSource};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        // Only reached on test failure paths; the happy path has already
        // waited for a clean exit.
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn bd_serve_round_trip_cache_hit_and_clean_shutdown() {
    let dir = std::env::temp_dir().join(format!("bd-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut child = Command::new(env!("CARGO_BIN_EXE_bd-serve"))
        .args(["--store", dir.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn bd-serve");

    // Contract: first stdout line is `listening on <addr>`.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ServerGuard(child);
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("bd-serve prints its address")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("parse address");
    let client = Client::new(addr);
    assert!(client.healthz().unwrap().ok);

    // One quick table1-row cell: Theorem 4 at tolerance on the bench graph.
    let n = 9;
    let graph_src = GraphSource::BenchEr { n, seed: 1000 };
    let graph = graph_src.materialize().unwrap();
    let algo = bd_dispersion::runner::Algorithm::GatheredThirdTh4;
    let request = BatchRequest {
        graph: graph_src,
        specs: vec![ScenarioSpec::evaluation(algo, &graph)
            .with_byzantine(
                algo.tolerance(n),
                bd_dispersion::adversaries::AdversaryKind::TokenHijacker,
            )
            .with_seed(1000)],
    };
    let wait = Duration::from_secs(120);

    let first = client.submit(&request).unwrap();
    let first = client.wait(first.id, wait).unwrap();
    assert_eq!(first.status, "done", "error: {:?}", first.error);
    let s1 = first.stats.unwrap();
    assert_eq!((s1.hits, s1.misses), (0, 1));
    assert!(first.cells[0].outcome.as_ref().unwrap().dispersed);

    let second = client.submit(&request).unwrap();
    let second = client.wait(second.id, wait).unwrap();
    let s2 = second.stats.unwrap();
    assert_eq!(
        (s2.hits, s2.misses),
        (1, 0),
        "second response is a cache hit"
    );
    assert_eq!(s2.rounds_simulated, 0, "zero rounds simulated on the rerun");
    assert!(second.cells[0].cached);

    let stats = client.stats().unwrap();
    assert_eq!(stats.store_entries, 1);
    assert_eq!(stats.batches_completed, 2);

    // The live /metrics surface: a parseable Prometheus text exposition
    // whose counters agree with /stats. Format check: every non-comment
    // line is exactly `name{labels} value` with a float-parseable value,
    // and every sample family was announced by a # TYPE header.
    let metrics = client.metrics().unwrap();
    let mut typed = std::collections::HashSet::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        assert!(typed.contains(family), "sample {name} has no TYPE header");
    }
    for expected in [
        "bd_store_entries 1",
        "bd_store_hits_total 1",
        "bd_batches_submitted_total 2",
        "bd_batches_completed_total 2",
        "bd_queue_depth 0",
        "bd_cells_miss_total 1",
    ] {
        assert!(
            metrics.lines().any(|l| l == expected),
            "missing {expected:?} in exposition:\n{metrics}"
        );
    }
    // The simulated cell produced one per-row throughput observation.
    assert!(
        metrics.contains("bd_row_rounds_per_sec_count{row=\"GatheredThirdTh4\"} 1"),
        "missing row histogram in exposition:\n{metrics}"
    );
    assert!(metrics.contains("le=\"+Inf\""));

    // The journal the daemon just wrote chain-verifies over the wire.
    let audit = client.audit().unwrap();
    assert!(audit.ok, "tampered journal: {:?}", audit.error);
    assert_eq!(audit.entries, 1);
    assert_ne!(audit.tip, bd_service::GENESIS_TIP);

    // Clean shutdown: the daemon drains and exits 0 on its own.
    client.shutdown().unwrap();
    let status = guard.0.wait().expect("wait for bd-serve");
    assert!(status.success(), "bd-serve exited {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
