//! Offline stand-in for `serde_derive`.
//!
//! The registry is unreachable in this build environment, so this crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` stub's JSON-value data model, parsing the item by hand
//! (no `syn`/`quote`). Supported shapes — the only ones this workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, tuple, or struct-like;
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Field types never need to be parsed: generated code relies on type
//! inference (`::serde::__field::<_>(..)` inside a struct literal), so only
//! field *names* and tuple arities are extracted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<(String, Shape)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored stub): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(split_top_commas(g.stream()).len())
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let variants = split_top_commas(body)
                .into_iter()
                .map(|chunk| parse_variant(&chunk))
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a token stream on commas at angle-bracket depth zero. Nested
/// parens/brackets/braces are single `Group` tokens, so only `<`/`>` puncts
/// need depth tracking (e.g. `Vec<(usize, usize)>` field types).
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash && depth > 0 => depth -= 1,
                ',' if depth == 0 => {
                    if !cur.is_empty() {
                        chunks.push(std::mem::take(&mut cur));
                    }
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> (String, Shape) {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    let name = match &chunk[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected variant name, found {other}"),
    };
    i += 1;
    let shape = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(split_top_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        _ => Shape::Unit, // unit variant (possibly with `= discriminant`)
    };
    (name, shape)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::ser(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => object_expr(fields, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inner = object_expr(fields, |f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn object_expr(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::__element(__v, {k}usize)?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__field(__v, \"{f}\")?"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::__element(__inner, {k}usize)?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                            elems.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(__inner, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1usize => {{\n\
                                 let (__k, __inner) = &__pairs[0usize];\n\
                                 let _ = &__inner;\n\
                                 match __k.as_str() {{\n\
                                     {payload}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"invalid value for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            )
        }
    }
}
