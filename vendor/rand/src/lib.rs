//! Offline stand-in for `rand`.
//!
//! Provides the API subset this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `SliceRandom::shuffle` — backed by
//! a deterministic splitmix64 stream. Seeded runs are reproducible, which is
//! all the simulator requires; the statistical quality of real rand returns
//! when the registry is reachable again.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, RR: SampleRange<T>>(&mut self, range: RR) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Types samplable by `Rng::gen` (real rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges accepted by `Rng::gen_range`. The output type is a trait
/// parameter (not an associated type) so untyped integer literals unify
/// with the call site's expected type, as with real rand.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher-Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0..10usize);
            assert_eq!(x, b.gen_range(0..10usize));
            assert!(x < 10);
        }
        let y: u64 = a.gen();
        let _ = y;
        assert!(a.gen_range(1..=5u32) >= 1);
        let p = (0..100).filter(|_| a.gen_bool(0.5)).count();
        assert!(p > 20 && p < 80, "gen_bool heavily biased: {p}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice sorted");
    }
}
