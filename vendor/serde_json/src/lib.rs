//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] model as real JSON text and parses
//! JSON text back, so `to_string`/`from_str` round-trips work for every type
//! deriving the vendored `serde` traits. The `json!` macro covers the
//! object/array/expression shapes this workspace uses (no nested
//! object-literals inside values).

pub use serde::DeError as Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.ser()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::de(value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.ser().to_string())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.ser(), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::de(&v)
}

/// Build a [`Value`] from a JSON-ish literal. Values in object/array
/// position may be arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ------------------------------------------------------------------ writer
//
// Compact rendering lives on `Display for serde::Value` (orphan rules keep
// it in the defining crate); only the pretty printer lives here.

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| Error::new("invalid \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(42),
            Value::Float(1.5),
            Value::Str("a\"b\\c\nd".into()),
        ] {
            let s = to_string(&v).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(v, back, "text was {s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Vec<(usize, usize)>> = vec![vec![(1, 2), (3, 4)], vec![]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<(usize, usize)>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn derive_roundtrips_representative_shapes() {
        use serde::{Deserialize, Serialize};

        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        struct Named {
            id: usize,
            adj: Vec<Vec<(usize, usize)>>,
            label: String,
            maybe: Option<u64>,
        }

        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        struct Newtype(u32);

        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        enum Mixed {
            Unit,
            Pair(usize, String),
            Rec { x: i64, flag: bool },
        }

        let n = Named {
            id: 7,
            adj: vec![vec![(0, 1)], vec![]],
            label: "a\"b".into(),
            maybe: None,
        };
        let back: Named = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(n, back);

        let w: Newtype = from_str(&to_string(&Newtype(9)).unwrap()).unwrap();
        assert_eq!(w, Newtype(9));

        for m in [
            Mixed::Unit,
            Mixed::Pair(3, "x".into()),
            Mixed::Rec { x: -5, flag: true },
        ] {
            let back: Mixed = from_str(&to_string(&m).unwrap()).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn json_macro_objects() {
        let n = 3usize;
        let v = json!({ "a": n, "b": format!("x{n}"), "ok": n > 2 });
        assert_eq!(
            v.to_string(),
            r#"{"a":3,"b":"x3","ok":true}"#
        );
    }
}
