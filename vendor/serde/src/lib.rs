//! Offline stand-in for `serde`.
//!
//! The build environment has no access to the crates registry, so this crate
//! provides the minimal serde surface the workspace uses: the
//! `Serialize`/`Deserialize` traits (re-exported together with the vendored
//! derive macros) over a self-describing JSON-like [`Value`] model. The
//! vendored `serde_json` crate renders and parses [`Value`] as real JSON
//! text, so `to_string`/`from_str` round-trips behave like the real thing
//! for the shapes this workspace serializes.
//!
//! The trait method names (`ser`/`de`) intentionally differ from real
//! serde's visitor-based API: nothing in the workspace calls them directly,
//! only derived impls and `serde_json` do.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i as i128),
            Value::UInt(u) => Some(*u as i128),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (what `serde_json::to_string` emits).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) if x.is_finite() => {
                // `{:?}` keeps a decimal point/exponent, so the text parses
                // back as a float.
                write!(f, "{x:?}")
            }
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, x)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{x}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => {
                let mut buf = [0u8; 4];
                f.write_str(c.encode_utf8(&mut buf))?;
            }
        }
    }
    f.write_str("\"")
}

/// Deserialization (and generic serde) error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn ser(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn de(v: &Value) -> Result<Self, DeError>;
}

// Helpers the derive macro expands to. `__field`/`__element` lean on type
// inference so the macro never has to parse field types.
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::de(inner),
        None => match v {
            Value::Object(_) => Err(DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.type_name()
            ))),
        },
    }
}

pub fn __element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
    match v.as_array().and_then(|xs| xs.get(idx)) {
        Some(inner) => T::de(inner),
        None => Err(DeError::new(format!(
            "expected array with at least {} elements, found {}",
            idx + 1,
            v.type_name()
        ))),
    }
}

// ----------------------------------------------------------- Serialize impls

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.type_name()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i128().ok_or_else(|| {
                    DeError::new(format!("expected integer, found {}", v.type_name()))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i128().ok_or_else(|| {
                    DeError::new(format!("expected integer, found {}", v.type_name()))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    DeError::new(format!("expected number, found {}", v.type_name()))
                })
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected single-char string, found {}", other.type_name()))),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.type_name()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        self.as_slice().ser()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::de).collect(),
            other => Err(DeError::new(format!("expected array, found {}", other.type_name()))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Value {
                Value::Array(vec![$(self.$idx.ser()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(xs) => Ok(($( __element::<$name>(v, $idx).map_err(|e| {
                        DeError::new(format!("tuple of {}: {e}", xs.len()))
                    })?,)+)),
                    other => Err(DeError::new(format!("expected array (tuple), found {}", other.type_name()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs: JSON objects require
/// string keys, and this workspace keys maps by ids/tuples. Both directions
/// live in this vendored pair of crates, so the representation round-trips.
macro_rules! impl_map {
    ($map:ident, $($bound:path),+) => {
        impl<K: Serialize, V: Serialize> Serialize for std::collections::$map<K, V> {
            fn ser(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.ser(), v.ser()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize $(+ $bound)+, V: Deserialize> Deserialize
            for std::collections::$map<K, V>
        {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(xs) => xs
                        .iter()
                        .map(|pair| {
                            let kv = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                                DeError::new("expected [key, value] pair")
                            })?;
                            Ok((K::de(&kv[0])?, V::de(&kv[1])?))
                        })
                        .collect(),
                    other => Err(DeError::new(format!("expected array (map), found {}", other.type_name()))),
                }
            }
        }
    };
}

impl_map!(HashMap, std::cmp::Eq, std::hash::Hash);
impl_map!(BTreeMap, std::cmp::Ord);

/// Sets serialize as arrays.
macro_rules! impl_set {
    ($set:ident, $($bound:path),+) => {
        impl<T: Serialize> Serialize for std::collections::$set<T> {
            fn ser(&self) -> Value {
                Value::Array(self.iter().map(Serialize::ser).collect())
            }
        }
        impl<T: Deserialize $(+ $bound)+> Deserialize for std::collections::$set<T> {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(xs) => xs.iter().map(T::de).collect(),
                    other => Err(DeError::new(format!("expected array (set), found {}", other.type_name()))),
                }
            }
        }
    };
}

impl_set!(HashSet, std::cmp::Eq, std::hash::Hash);
impl_set!(BTreeSet, std::cmp::Ord);
