//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property suites use: the
//! `proptest!` macro with a `proptest_config` inner attribute, `name in
//! strategy` arguments over integer/float ranges, `prop::sample::select`,
//! `proptest::bool::ANY`, and `prop_assert!`/`prop_assert_eq!`. Sampling is
//! deterministic: the RNG is seeded from the test name, so every run draws
//! the same cases (no shrinking — a failing case prints its inputs
//! directly).

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error produced by `prop_assert!` family; makes the test case fail.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Deterministic splitmix64 RNG seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of sampled values. `Value` matches real proptest's associated
/// type name so `impl Strategy<Value = T>` signatures port over unchanged.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Treat the closed upper bound as reachable via rounding.
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A fixed value, always produced.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly pick one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct Any;

    /// Uniform random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::std::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> ::std::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} (left: `{:?}`, right: `{:?}`)",
            ::std::format!($($fmt)*),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right` (both: `{:?}`)",
            __l
        );
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body, which may use `prop_assert!` / `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(::std::stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __desc = ::std::format!(
                    ::std::concat!(
                        "case {}",
                        $(" ", ::std::stringify!($arg), "={:?}",)*
                    ),
                    __case
                    $(, &$arg)*
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest {} failed: {} [{}]",
                        ::std::stringify!($name),
                        __e,
                        __desc
                    );
                }
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in 0.25f64..=1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.25..=1.0).contains(&x));
        }

        #[test]
        fn select_and_bool(v in prop::sample::select(vec![1, 2, 3]), b in crate::bool::ANY) {
            prop_assert!(v >= 1 && v <= 3);
            if b {
                return Ok(());
            }
            prop_assert!(!b);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
