//! Offline stand-in for `rayon`.
//!
//! The crates registry is unreachable in this build environment, so this
//! shim keeps the rayon *call sites* intact while executing sequentially:
//! `into_par_iter()`/`par_iter()` simply hand back the ordinary `std`
//! iterator, and every downstream adaptor (`map`, `flat_map`, `filter`,
//! `collect`, …) is the `std::iter` one. Swapping in real rayon later is a
//! one-line manifest change; no call site has to move.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// `into_par_iter()` for any owned iterable (vectors, ranges, …).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for anything iterable by shared reference (slices, vectors,
/// maps, …).
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item: 'data;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
    <&'data T as IntoIterator>::Item: 'data,
{
    type Iter = <&'data T as IntoIterator>::IntoIter;
    type Item = <&'data T as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` for anything iterable by unique reference.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item: 'data;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
    <&'data mut T as IntoIterator>::Item: 'data,
{
    type Iter = <&'data mut T as IntoIterator>::IntoIter;
    type Item = <&'data mut T as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = (0..4).into_par_iter().sum();
        assert_eq!(sum, 6);
        let nested: Vec<u64> = xs
            .par_iter()
            .flat_map(|&x| (0..2u64).into_par_iter().map(move |r| x as u64 + r))
            .collect();
        assert_eq!(nested, vec![1, 2, 2, 3, 3, 4]);
    }
}
