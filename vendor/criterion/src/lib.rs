//! Offline stand-in for `criterion`.
//!
//! Keeps the Criterion bench API (`benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) source-compatible
//! while the registry is unreachable. Each bench body runs once and its
//! wall-clock time is printed — enough to smoke-run benches and catch rot;
//! statistical sampling returns when the real crate can be fetched.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", id, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO };
    let start = Instant::now();
    f(&mut b);
    let total = start.elapsed();
    println!("bench {group}/{id}: body {:?} (iter {:?})", total, b.elapsed);
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
