//! # byzantine-dispersion
//!
//! A full Rust reproduction of *Byzantine Dispersion on Graphs*
//! (Molla–Mondal–Moses Jr., IPDPS 2021): `n` mobile robots, up to `f` of them
//! Byzantine, must spread over an anonymous `n`-node port-labeled graph so
//! that every node ends up with at most one non-Byzantine robot.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`graphs`] — anonymous port-labeled graphs, generators, quotient graphs;
//! * [`runtime`] — the synchronous multi-robot simulator with sub-rounds and
//!   weak/strong Byzantine identity stamping;
//! * [`exploration`] — exploration walks, token-based map construction, and
//!   round-cost models;
//! * [`gathering`] — the Byzantine-immune view-based gathering substrate;
//! * [`dispersion`] — the paper's algorithms (Theorems 1–7), the adversary
//!   library, the Theorem 8 impossibility construction, and the high-level
//!   [`dispersion::runner`] API;
//! * [`dynamic`] — event-scheduled dynamic worlds: typed event timelines
//!   (robot churn, edge failure/heal, adversary switches), epoch-structured
//!   re-planning and re-verification, and the `bdtr1` deterministic
//!   trace-replay format (see `DYNAMICS.md`);
//! * [`service`] — the serving layer: content-addressed result store,
//!   cache-aware batch planner, and the `bd-serve` HTTP daemon.
//!
//! ## Quickstart
//!
//! ```
//! use byzantine_dispersion::prelude::*;
//!
//! // An asymmetric random graph on 12 nodes.
//! let g = bd_graphs::generators::erdos_renyi_connected(12, 0.3, 7).unwrap();
//! // A session shares one graph handle across any number of runs.
//! let session = Session::new(g);
//! // 12 robots gathered at node 0; 3 of them Byzantine squatters.
//! let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, session.graph(), 0)
//!     .with_byzantine(3, AdversaryKind::Squatter)
//!     .with_seed(42);
//! let outcome = session.run(&spec).unwrap();
//! assert!(outcome.dispersed);
//! ```

pub use bd_dispersion as dispersion;
pub use bd_dynamic as dynamic;
pub use bd_exploration as exploration;
pub use bd_gathering as gathering;
pub use bd_graphs as graphs;
pub use bd_runtime as runtime;
pub use bd_service as service;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use bd_dispersion::adversaries::AdversaryKind;
    pub use bd_dispersion::registry::{StartRequirement, TableRow};
    pub use bd_dispersion::runner::{run_algorithm, Algorithm, Outcome, ScenarioSpec};
    pub use bd_dispersion::session::Session;
    pub use bd_dispersion::verify::verify_dispersion;
    pub use bd_dynamic::{
        DynamicOutcome, DynamicSession, DynamicSpec, EventKind, EventSchedule, ScheduledEvent,
    };
    pub use bd_graphs::{self, generators, PortGraph};
    pub use bd_runtime::metrics::RunMetrics;
    pub use bd_service::{CachedPlanner, ResultStore};
}
