//! Property-based tests over the full pipeline: random instances, random
//! adversaries, always within tolerance -> always dispersed.

use byzantine_dispersion::dispersion::impossibility::replay_experiment;
use byzantine_dispersion::dispersion::runner::ByzPlacement;
use byzantine_dispersion::exploration::sim::build_map_offline;
use byzantine_dispersion::graphs::iso::are_isomorphic_rooted;
use byzantine_dispersion::prelude::*;
use proptest::prelude::*;

fn weak_adversaries() -> impl Strategy<Value = AdversaryKind> {
    prop::sample::select(vec![
        AdversaryKind::Squatter,
        AdversaryKind::FakeSettler,
        AdversaryKind::Silent,
        AdversaryKind::Wanderer,
        AdversaryKind::LiarFlags,
        AdversaryKind::TokenHijacker,
        AdversaryKind::MapLiar,
        AdversaryKind::Crowd,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 4 pipeline: any weak adversary, any f within tolerance, any
    /// seed -> dispersion holds.
    #[test]
    fn th4_always_disperses_within_tolerance(
        n in 9usize..14,
        seed in 0u64..100,
        kind in weak_adversaries(),
        f_frac in 0.0f64..=1.0,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.4, seed).unwrap();
        let tol = Algorithm::GatheredThirdTh4.tolerance(n);
        let f = ((tol as f64) * f_frac).round() as usize;
        let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &g, 0)
            .with_byzantine(f, kind)
            .with_seed(seed);
        let out = run_algorithm(Algorithm::GatheredThirdTh4, &g, &spec).unwrap();
        prop_assert!(out.dispersed, "n={n} f={f} {kind:?}: {:?}", out.report.violations);
    }

    /// Theorem 1: extreme Byzantine counts on asymmetric instances.
    #[test]
    fn th1_survives_extreme_byzantine(
        n in 6usize..12,
        seed in 0u64..100,
        kind in weak_adversaries(),
    ) {
        let g = generators::erdos_renyi_connected(n, 0.45, seed).unwrap();
        if !byzantine_dispersion::graphs::quotient::quotient_graph(&g)
            .is_isomorphic_to_original()
        {
            return Ok(()); // symmetric draw: precondition void
        }
        let spec = ScenarioSpec::arbitrary(Algorithm::QuotientTh1, &g)
            .with_byzantine(n - 1, kind)
            .with_seed(seed);
        let out = run_algorithm(Algorithm::QuotientTh1, &g, &spec).unwrap();
        prop_assert!(out.dispersed);
    }

    /// Strong protocol under spoofing at random placements.
    #[test]
    fn th6_survives_spoofers(
        n in 8usize..14,
        seed in 0u64..50,
        low in proptest::bool::ANY,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.4, seed).unwrap();
        let f = Algorithm::StrongGatheredTh6.tolerance(n);
        let placement = if low { ByzPlacement::LowIds } else { ByzPlacement::HighIds };
        let spec = ScenarioSpec::gathered(Algorithm::StrongGatheredTh6, &g, 0)
            .with_byzantine(f, AdversaryKind::StrongSpoofer)
            .with_placement(placement)
            .with_seed(seed);
        let out = run_algorithm(Algorithm::StrongGatheredTh6, &g, &spec).unwrap();
        prop_assert!(out.dispersed, "n={n} f={f} {placement:?}");
    }

    /// Token map construction from random origins is always exact.
    #[test]
    fn token_maps_always_exact(n in 4usize..20, seed in 0u64..300, origin in 0usize..20) {
        let g = generators::erdos_renyi_connected(n, 0.3, seed).unwrap();
        let origin = origin % n;
        let out = build_map_offline(&g, origin).unwrap();
        prop_assert!(are_isomorphic_rooted(&out.map, 0, &g, origin));
        // T2 bound: moves <= 8 * n * m + 64.
        prop_assert!(out.agent_moves <= 8 * (n as u64) * (g.m() as u64) + 64);
    }

    /// Theorem 8: the replay experiment matches the theorem on random cells.
    #[test]
    fn thm8_experiment_matches_theory(
        n in 4usize..8,
        k_mult in 1usize..4,
        f in 0usize..8,
        seed in 0u64..50,
    ) {
        let g = generators::erdos_renyi_connected(n, 0.5, seed).unwrap();
        let k = n * k_mult;
        if let Some(r) = replay_experiment(&g, k, f, seed) {
            prop_assert_eq!(r.violated, r.theorem_predicts,
                "k={} f={} n={}", k, f, n);
        }
    }
}
