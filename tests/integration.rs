//! Cross-crate integration: substrates composed end-to-end through the
//! facade, exactly as a downstream user would drive them.

use byzantine_dispersion::dispersion::runner::ByzPlacement;
use byzantine_dispersion::exploration::sim::build_map_offline;
use byzantine_dispersion::gathering::route::gather_route;
use byzantine_dispersion::graphs::iso::are_isomorphic_rooted;
use byzantine_dispersion::graphs::navigate::follow_ports;
use byzantine_dispersion::graphs::quotient::quotient_graph;
use byzantine_dispersion::prelude::*;

/// The full Theorem 1 pipeline on every graph family that satisfies its
/// precondition.
#[test]
fn theorem1_pipeline_across_families() {
    let graphs = vec![
        ("ring", generators::ring(9).unwrap()),
        ("star", generators::star(8).unwrap()),
        ("tree", generators::random_tree(10, 4).unwrap()),
        (
            "gnp",
            generators::erdos_renyi_connected(11, 0.35, 6).unwrap(),
        ),
        ("lollipop", generators::lollipop(5, 4).unwrap()),
    ];
    for (label, g) in graphs {
        let q = quotient_graph(&g);
        assert!(
            q.is_isomorphic_to_original(),
            "{label}: fixture must be asymmetric"
        );
        let spec = ScenarioSpec::arbitrary(Algorithm::QuotientTh1, &g)
            .with_byzantine(g.n() - 2, AdversaryKind::Wanderer)
            .with_seed(3);
        let out = run_algorithm(Algorithm::QuotientTh1, &g, &spec).unwrap();
        assert!(out.dispersed, "{label}: {:?}", out.report.violations);
    }
}

/// Gathering + token map construction agree: the map built from the
/// gathering node is rooted-isomorphic to the graph at that node.
#[test]
fn gathering_then_map_construction_consistent() {
    let g = generators::erdos_renyi_connected(12, 0.3, 9).unwrap();
    let route = gather_route(&g, 5).unwrap();
    let end = follow_ports(&g, 5, &route.ports).unwrap();
    assert_eq!(end, route.end);
    let map = build_map_offline(&g, end).unwrap();
    assert!(are_isomorphic_rooted(&map.map, 0, &g, end));
}

/// The symmetric-graph failure mode surfaces as typed errors, not wrong
/// answers.
#[test]
fn symmetric_graphs_fail_loudly() {
    let g = generators::oriented_ring(8).unwrap();
    // Theorem 1: quotient collapses -> precondition error.
    let spec = ScenarioSpec::arbitrary(Algorithm::QuotientTh1, &g).with_seed(1);
    let err = run_algorithm(Algorithm::QuotientTh1, &g, &spec).unwrap_err();
    assert!(format!("{err}").contains("quotient"));
    // Theorem 2: gathering infeasible.
    let err = run_algorithm(Algorithm::ArbitraryHalfTh2, &g, &spec).unwrap_err();
    assert!(format!("{err}").contains("gathering"));
}

/// Gathered-start algorithms on a gathered spec work from any start node.
#[test]
fn gathered_algorithms_from_every_start_node() {
    let g = generators::erdos_renyi_connected(9, 0.4, 12).unwrap();
    for start in 0..g.n() {
        let spec =
            ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &g, start).with_seed(start as u64);
        let out = run_algorithm(Algorithm::GatheredThirdTh4, &g, &spec).unwrap();
        assert!(out.dispersed, "start {start}");
    }
}

/// Rounds scale sensibly: Theorem 6 (O(n^3)) beats Theorem 3 (O(n^4)) on
/// the same instances, as Table 1's ordering implies.
#[test]
fn table1_round_ordering_holds() {
    let mut th3 = Vec::new();
    let mut th6 = Vec::new();
    for n in [8usize, 12] {
        let g = generators::erdos_renyi_connected(n, 0.35, n as u64).unwrap();
        let spec = ScenarioSpec::gathered(Algorithm::GatheredHalfTh3, &g, 0).with_seed(2);
        th3.push(
            run_algorithm(Algorithm::GatheredHalfTh3, &g, &spec)
                .unwrap()
                .rounds,
        );
        th6.push(
            run_algorithm(Algorithm::StrongGatheredTh6, &g, &spec)
                .unwrap()
                .rounds,
        );
    }
    for (a, b) in th3.iter().zip(&th6) {
        assert!(b < a, "Thm 6 ({b}) must be cheaper than Thm 3 ({a})");
    }
}

/// Byzantine placement stress: concentrating all Byzantine IDs into the
/// lowest-ID (agent) group must not break Theorem 4 within tolerance.
#[test]
fn group_infiltration_within_tolerance() {
    let g = generators::erdos_renyi_connected(12, 0.35, 20).unwrap();
    let f = Algorithm::GatheredThirdTh4.tolerance(12);
    for kind in [AdversaryKind::TokenHijacker, AdversaryKind::MapLiar] {
        let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &g, 0)
            .with_byzantine(f, kind)
            .with_placement(ByzPlacement::LowIds)
            .with_seed(8);
        let out = run_algorithm(Algorithm::GatheredThirdTh4, &g, &spec).unwrap();
        assert!(out.dispersed, "{kind:?}: {:?}", out.report.violations);
    }
}

/// Fewer robots than nodes (k < n) still disperse (the k <= n regime of
/// the baseline and the paper's Definition 1).
#[test]
fn fewer_robots_than_nodes() {
    let g = generators::erdos_renyi_connected(10, 0.35, 30).unwrap();
    let spec = ScenarioSpec::gathered(Algorithm::Baseline, &g, 0)
        .with_seed(4)
        .with_robots(6);
    let out = run_algorithm(Algorithm::Baseline, &g, &spec).unwrap();
    assert!(out.dispersed);
    let distinct: std::collections::HashSet<_> = out.final_positions.iter().collect();
    assert_eq!(distinct.len(), 6);
}

/// Metrics are internally consistent.
#[test]
fn metrics_consistency() {
    let g = generators::erdos_renyi_connected(9, 0.4, 40).unwrap();
    let spec = ScenarioSpec::gathered(Algorithm::GatheredThirdTh4, &g, 0)
        .with_byzantine(2, AdversaryKind::Squatter)
        .with_seed(11);
    let out = run_algorithm(Algorithm::GatheredThirdTh4, &g, &spec).unwrap();
    assert!(out.metrics.max_moves_per_robot <= out.metrics.total_moves);
    assert!(out.metrics.total_moves as u64 >= 1);
    // Every stepped (non-fast-forwarded) round executes at least one
    // sub-round; skipped rounds execute none.
    let stepped = out.rounds - out.metrics.rounds_skipped;
    assert!(out.metrics.subrounds_executed >= stepped);
    // A Squatter-adversary run has idle phases: fast-forwarding must fire.
    assert!(out.metrics.rounds_skipped > 0);
    assert_eq!(out.rounds, out.metrics.rounds);
}
