//! Smoke-runs every `examples/` entry point, so the doc-facing examples
//! cannot rot. `cargo test` already builds the example binaries alongside
//! the test binaries (`target/<profile>/examples/`); each test executes one
//! and requires a clean exit — the examples end in asserts, so behavioral
//! regressions fail here, not just compile errors.

use std::path::PathBuf;
use std::process::Command;

fn example_binary(name: &str) -> PathBuf {
    // Test binaries live in target/<profile>/deps/; examples are siblings
    // of `deps` under target/<profile>/examples/.
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples").join(name)
}

fn run_example(name: &str) {
    let bin = example_binary(name);
    assert!(
        bin.exists(),
        "example binary missing at {} — was the example target renamed?",
        bin.display()
    );
    let output = Command::new(&bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs_clean() {
    run_example("quickstart");
}

#[test]
fn adversary_gauntlet_runs_clean() {
    run_example("adversary_gauntlet");
}

#[test]
fn impossibility_demo_runs_clean() {
    run_example("impossibility_demo");
}

#[test]
fn sensor_relocation_runs_clean() {
    run_example("sensor_relocation");
}

#[test]
fn warehouse_swarm_runs_clean() {
    run_example("warehouse_swarm");
}
